"""Interleaved 1F1B with virtual pipeline stages (Megatron-style).

An extension beyond the paper: each physical stage hosts ``v`` model
*chunks* (virtual stages); chunk ``c`` of ``V = p*v`` lives on physical
stage ``c mod p``.  Interleaving shrinks the pipeline bubble from
``(p-1)/m`` to ``(p-1)/(m*v)`` at the price of ``v`` times as many
cross-mesh transfers — which makes it an interesting stress test for
the paper's communication optimizations: the more chunk boundaries, the
more there is for broadcast + overlap to hide.

The schedule follows Megatron-LM's interleaved 1F1B: warm-up depth
``(p - rank - 1) * 2 + (v - 1) * p`` forward steps, then one-forward-
one-backward, with micro-batches processed in groups of ``p``.
Communication is always overlapped (kernel serial channel per directed
stage pair); the blocking mode of the plain executor is deliberately
not offered — interleaving exists to create overlap opportunities.

Like the plain executor, this one runs on the shared runtime kernel
and reports through its telemetry bus; ``InterleavedResult.timeline``
is a view over the emitted ``cat="compute"`` spans (now
:class:`~repro.pipeline.timeline.TimelineEntry` records with a
``chunk`` field, not bare tuples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime.kernel import Kernel
from ..runtime.telemetry import TelemetryBus
from .timeline import TimelineEntry, timeline_from_spans

__all__ = [
    "ChunkTask",
    "InterleavedJob",
    "InterleavedResult",
    "interleaved_order",
    "simulate_interleaved",
]


@dataclass(frozen=True)
class ChunkTask:
    """One compute step: forward or backward of (chunk, microbatch)."""

    kind: str  # "F" | "B"
    microbatch: int
    chunk: int

    def __repr__(self) -> str:
        return f"{self.kind}{self.microbatch}c{self.chunk}"


@dataclass(frozen=True)
class InterleavedJob:
    """A homogeneous interleaved pipeline job.

    Per-chunk compute costs and a uniform boundary transfer cost (the
    homogeneous-transformer case; chunk boundaries all carry the same
    activation tensor).
    """

    n_stages: int
    n_virtual: int
    n_microbatches: int
    fwd_time: float  # per chunk per micro-batch
    bwd_time: float
    comm_fwd: float  # per chunk-boundary transfer
    comm_bwd: float
    activation_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.n_stages < 1 or self.n_virtual < 1:
            raise ValueError("need at least one stage and one chunk")
        if self.n_microbatches < 1:
            raise ValueError("need at least one micro-batch")
        if self.n_microbatches % self.n_stages != 0:
            raise ValueError(
                "interleaved 1F1B needs micro-batches divisible by the "
                f"number of stages ({self.n_microbatches} % {self.n_stages})"
            )
        if min(self.fwd_time, self.bwd_time, self.comm_fwd, self.comm_bwd) < 0:
            raise ValueError("times must be non-negative")

    @property
    def n_chunks(self) -> int:
        return self.n_stages * self.n_virtual

    def stage_of(self, chunk: int) -> int:
        return chunk % self.n_stages


def interleaved_order(job: InterleavedJob, rank: int) -> list[ChunkTask]:
    """Megatron's interleaved 1F1B step order for one physical stage."""
    p, v, m = job.n_stages, job.n_virtual, job.n_microbatches
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} outside [0, {p})")
    total = m * v

    def f_task(step: int) -> ChunkTask:
        chunk_local = (step // p) % v
        mb = (step // (p * v)) * p + step % p
        return ChunkTask("F", mb, chunk_local * p + rank)

    def b_task(step: int) -> ChunkTask:
        chunk_local = v - 1 - ((step // p) % v)
        mb = (step // (p * v)) * p + step % p
        return ChunkTask("B", mb, chunk_local * p + rank)

    warmup = min(total, (p - rank - 1) * 2 + (v - 1) * p)
    order: list[ChunkTask] = [f_task(s) for s in range(warmup)]
    fstep, bstep = warmup, 0
    while fstep < total:
        order.append(f_task(fstep))
        fstep += 1
        order.append(b_task(bstep))
        bstep += 1
    while bstep < total:
        order.append(b_task(bstep))
        bstep += 1
    return order


@dataclass
class InterleavedResult:
    """Outcome of one interleaved iteration (timeline derived from spans)."""

    iteration_time: float
    peak_activation_counts: dict[int, int]
    telemetry: TelemetryBus = field(repr=False, compare=False)
    job: InterleavedJob = field(repr=False)
    _timeline_cache: Optional[tuple[int, list[TimelineEntry]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def timeline(self) -> list[TimelineEntry]:
        """Compute intervals (with ``chunk``), from the telemetry stream."""
        spans = self.telemetry.spans
        if self._timeline_cache is None or self._timeline_cache[0] != len(spans):
            self._timeline_cache = (len(spans), timeline_from_spans(spans))
        return self._timeline_cache[1]

    def bubble_fraction(self) -> float:
        """Idle fraction of the busiest stage."""
        busy: dict[int, float] = {}
        for e in self.timeline:
            busy[e.stage] = busy.get(e.stage, 0.0) + (e.end - e.start)
        return 1.0 - max(busy.values()) / self.iteration_time


def simulate_interleaved(job: InterleavedJob) -> InterleavedResult:
    """Event-driven execution of the interleaved schedule (overlapped).

    Dependencies: ``F(c, mb)`` waits for the activation of chunk
    ``c-1``; ``B(c, mb)`` for the gradient from chunk ``c+1``; the last
    chunk's backward starts from its own forward.  Transfers occupy a
    kernel serial channel per (src stage, dst stage, direction).
    """
    loop = Kernel()
    bus = loop.bus
    p = job.n_stages
    orders = [interleaved_order(job, r) for r in range(p)]

    idx = [0] * p
    stage_res = [loop.resource(f"stage:{s}") for s in range(p)]
    arrived: set[tuple[str, int, int]] = set()  # (kind, chunk, microbatch)
    act = [bus.gauge("activations", track=f"stage:{s}") for s in range(p)]
    done: set[tuple[str, int, int]] = set()

    def deps_met(t: ChunkTask) -> bool:
        if t.kind == "F":
            return t.chunk == 0 or ("F", t.chunk, t.microbatch) in arrived
        if t.chunk == job.n_chunks - 1:
            return ("F", t.chunk, t.microbatch) in done
        return ("B", t.chunk, t.microbatch) in arrived

    def send(kind: str, src_chunk: int, mb: int) -> None:
        """Transfer the produced tensor to the neighbouring chunk."""
        if kind == "F":
            dst_chunk = src_chunk + 1
            if dst_chunk >= job.n_chunks:
                return
            dur, direction = job.comm_fwd, "fwd"
            key_kind = "F"
        else:
            dst_chunk = src_chunk - 1
            if dst_chunk < 0:
                return
            dur, direction = job.comm_bwd, "bwd"
            key_kind = "B"
        src_stage, dst_stage = job.stage_of(src_chunk), job.stage_of(dst_chunk)
        chan = loop.channel(f"{src_stage}->{dst_stage}:{direction}")
        start = chan.reserve(loop.now, dur)
        end = start + dur
        bus.emit_span(
            f"c{src_chunk}->c{dst_chunk}",
            cat="comm",
            track=f"chan:{src_stage}->{dst_stage}:{direction}",
            start=start,
            end=end,
            src_stage=src_stage,
            dst_stage=dst_stage,
            direction=direction,
            microbatch=mb,
            label=f"c{src_chunk}->c{dst_chunk}",
        )

        def deliver(kk=key_kind, dc=dst_chunk, mb=mb, ds=dst_stage) -> None:
            arrived.add((kk, dc, mb))
            try_start(ds)

        loop.call_at(end, deliver)

    def on_complete(stage: int, t: ChunkTask, start: float) -> None:
        bus.emit_span(
            repr(t),
            cat="compute",
            track=f"stage:{stage}",
            start=start,
            end=loop.now,
            stage=stage,
            kind=t.kind,
            microbatch=t.microbatch,
            chunk=t.chunk,
        )
        done.add((t.kind, t.chunk, t.microbatch))
        if t.kind == "F":
            act[stage].add(1)
        else:
            act[stage].add(-1)
        stage_res[stage].release()
        idx[stage] += 1
        send(t.kind, t.chunk, t.microbatch)
        try_start(stage)

    def try_start(stage: int) -> None:
        if stage_res[stage].in_use or idx[stage] >= len(orders[stage]):
            return
        t = orders[stage][idx[stage]]
        if not deps_met(t):
            return
        stage_res[stage].try_acquire()
        start = loop.now
        dur = job.fwd_time if t.kind == "F" else job.bwd_time
        loop.call_after(dur, lambda: on_complete(stage, t, start))

    for s in range(p):
        try_start(s)
    loop.run()

    stuck = [s for s in range(p) if idx[s] < len(orders[s])]
    if stuck:
        detail = {s: repr(orders[s][idx[s]]) for s in stuck}
        raise RuntimeError(f"interleaved schedule deadlocked at {detail}")
    iteration_time = 0.0
    peak = dict.fromkeys(range(p), 0)
    for span in bus.spans:
        if span.cat == "compute":
            iteration_time = max(iteration_time, span.end)
    for c in bus.counters:
        if c.name == "activations" and c.track.startswith("stage:"):
            stage = int(c.track[len("stage:"):])
            peak[stage] = max(peak[stage], int(c.value))
    return InterleavedResult(
        iteration_time=iteration_time,
        peak_activation_counts=peak,
        telemetry=bus,
        job=job,
    )
