"""Shared timeline records for the pipeline executors.

:class:`TimelineEntry` and :class:`CommEntry` used to be duplicated
between the plain and interleaved executors (the latter as bare
tuples).  They now live here, and — since the executors report through
the runtime telemetry bus — they are *derived views*: the helpers below
rebuild them from the span stream, so a result object holds no private
timeline lists.

Span conventions (shared by both executors):

* compute spans: ``cat="compute"``, track ``stage:<s>``, attrs
  ``stage``/``kind``/``microbatch`` (and ``chunk`` when interleaved);
* transfer spans: ``cat="comm"``, track ``chan:<src>-><dst>:<dir>``,
  attrs ``src_stage``/``dst_stage``/``direction``/``microbatch``/
  ``label`` (plus ``busy_stage`` when the recv occupies a stage in
  blocking mode);
* blocking-send spans: ``cat="send"``, track ``stage:<s>``, covering
  the interval the producer stage is wedged in program-order sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..runtime.telemetry import SpanRecord

__all__ = [
    "TimelineEntry",
    "CommEntry",
    "timeline_from_spans",
    "comms_from_spans",
]


@dataclass(frozen=True)
class TimelineEntry:
    """One compute interval on a stage (``chunk >= 0`` when interleaved)."""

    stage: int
    kind: str
    microbatch: int
    start: float
    end: float
    chunk: int = -1


@dataclass(frozen=True)
class CommEntry:
    """One cross-stage transfer interval."""

    src_stage: int
    dst_stage: int
    direction: str  # "fwd" | "bwd"
    microbatch: int
    label: str
    start: float
    end: float


def timeline_from_spans(spans: Iterable[SpanRecord]) -> list[TimelineEntry]:
    """Rebuild the compute timeline from ``cat="compute"`` spans."""
    out: list[TimelineEntry] = []
    for s in spans:
        if s.cat != "compute":
            continue
        a = s.attrs
        out.append(
            TimelineEntry(
                stage=int(a["stage"]),  # type: ignore[arg-type]
                kind=str(a["kind"]),
                microbatch=int(a["microbatch"]),  # type: ignore[arg-type]
                start=s.start,
                end=s.end,
                chunk=int(a.get("chunk", -1)),  # type: ignore[arg-type]
            )
        )
    return out


def comms_from_spans(spans: Iterable[SpanRecord]) -> list[CommEntry]:
    """Rebuild the transfer list from ``cat="comm"`` spans."""
    out: list[CommEntry] = []
    for s in spans:
        if s.cat != "comm":
            continue
        a = s.attrs
        out.append(
            CommEntry(
                src_stage=int(a["src_stage"]),  # type: ignore[arg-type]
                dst_stage=int(a["dst_stage"]),  # type: ignore[arg-type]
                direction=str(a["direction"]),
                microbatch=int(a["microbatch"]),  # type: ignore[arg-type]
                label=str(a["label"]),
                start=s.start,
                end=s.end,
            )
        )
    return out
