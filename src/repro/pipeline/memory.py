"""Activation-memory analysis of pipeline schedules (§4, Table 1).

The eager-1F1B schedule stores activations for more in-flight
micro-batches than 1F1B; the paper argues the increase is at most
``#stages x activation_size`` per GPU — small next to weights and
optimizer state.  This module provides the analytic peak in-flight
counts per schedule and compares them with executor measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from .executor import PipelineResult
from .schedules import eager_warmup, fifo_warmup
from .stage import PipelineJob

__all__ = [
    "analytic_peak_inflight",
    "eager_memory_increase",
    "StageMemory",
    "memory_report",
]


def analytic_peak_inflight(
    schedule: str, stage: int, n_stages: int, n_microbatches: int
) -> int:
    """Upper bound on concurrently stored activations at one stage.

    In the steady state of 1F1B-style schedules a stage holds exactly
    its warm-up depth of activations; GPipe holds all micro-batches.
    """
    if schedule == "gpipe":
        return n_microbatches
    if schedule == "1f1b":
        return min(n_microbatches, fifo_warmup(stage, n_stages))
    if schedule == "eager_1f1b":
        return min(n_microbatches, eager_warmup(stage, n_stages))
    raise ValueError(f"unknown schedule {schedule!r}")


def eager_memory_increase(stage: int, n_stages: int, activation_bytes: float) -> float:
    """Extra bytes eager-1F1B stores at ``stage`` compared to 1F1B.

    ``(2(p - s - 1) + 1) - (p - s) = p - s - 1 <= #stages`` in-flight
    activations — the paper's bound.
    """
    delta = eager_warmup(stage, n_stages) - fifo_warmup(stage, n_stages)
    return max(0, delta) * activation_bytes


@dataclass(frozen=True)
class StageMemory:
    stage: int
    params_bytes: float
    peak_activation_count: int
    activation_bytes: float

    @property
    def activation_total(self) -> float:
        return self.peak_activation_count * self.activation_bytes

    @property
    def total(self) -> float:
        return self.params_bytes + self.activation_total


def memory_report(job: PipelineJob, result: PipelineResult) -> list[StageMemory]:
    """Measured per-stage peak memory of one simulated iteration."""
    return [
        StageMemory(
            stage=s.stage_id,
            params_bytes=s.params_bytes,
            peak_activation_count=result.peak_activation_counts.get(s.stage_id, 0),
            activation_bytes=s.activation_bytes,
        )
        for s in job.stages
    ]
