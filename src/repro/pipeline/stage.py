"""Pipeline-parallel job description: stages and cross-mesh comm edges.

A pipeline job is a DAG of stages.  Each stage has per-micro-batch
compute costs (forward, backward split into the activation-gradient part
``Bx`` and the weight-gradient part ``Bw`` — the split behind *backward
weight delaying*, §4) and memory footprints.  A :class:`CommEdge` is one
cross-mesh resharding dependency between two stages: sequential
activations, or a U-Net long skip connection.  Edge durations are
resolved outside (by simulating the boundary resharding task under a
chosen strategy) so the pipeline executor stays strategy-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageProfile", "CommEdge", "PipelineJob"]


@dataclass(frozen=True)
class StageProfile:
    """Per-micro-batch costs of one pipeline stage."""

    stage_id: int
    fwd_time: float
    bwd_x_time: float
    bwd_w_time: float
    #: bytes of weights + optimizer state resident on the stage's mesh
    params_bytes: float = 0.0
    #: activation bytes stored per in-flight micro-batch (per mesh)
    activation_bytes: float = 0.0
    #: memory budget of the stage's mesh in bytes (0 = unbounded); the
    #: static analyzer flags schedules whose in-flight activations
    #: cannot fit (diagnostic S001)
    memory_capacity: float = 0.0

    def __post_init__(self) -> None:
        if min(self.fwd_time, self.bwd_x_time, self.bwd_w_time) < 0:
            raise ValueError("stage times must be non-negative")
        if self.memory_capacity < 0:
            raise ValueError("memory capacity must be non-negative")

    @property
    def bwd_time(self) -> float:
        return self.bwd_x_time + self.bwd_w_time


@dataclass(frozen=True)
class CommEdge:
    """One cross-mesh tensor dependency between two stages.

    ``fwd_time`` is the resharding latency of the forward activation per
    micro-batch; ``bwd_time`` of its gradient on the backward pass.

    ``resharding`` optionally carries the compiled resharding behind the
    edge (an :class:`~repro.compiler.EdgeResharding`, duck-typed to keep
    this module compiler-agnostic).  When present, :meth:`comm_time`
    prices each message by executing the cached compiled plan through
    ``simulate_plan`` — the one shared timing path; when absent the
    pre-resolved ``fwd_time``/``bwd_time`` scalars are used.
    """

    src_stage: int
    dst_stage: int
    fwd_time: float
    bwd_time: float
    fwd_bytes: float = 0.0
    bwd_bytes: float = 0.0
    label: str = ""
    #: compiled resharding behind this edge (None = scalar times only)
    resharding: object = field(default=None, compare=False, repr=False)

    def comm_time(self, direction: str) -> float:
        """Per-micro-batch transfer duration in ``direction``."""
        if self.resharding is not None:
            return self.resharding.time(direction)
        if direction == "fwd":
            return self.fwd_time
        if direction == "bwd":
            return self.bwd_time
        raise ValueError(f"direction must be 'fwd' or 'bwd', got {direction!r}")

    def __post_init__(self) -> None:
        if self.src_stage == self.dst_stage:
            raise ValueError("comm edge must cross stages")
        if self.src_stage > self.dst_stage:
            raise ValueError(
                "edges are directed along the forward pass (src < dst); "
                "the backward transfer is implied"
            )
        if self.fwd_time < 0 or self.bwd_time < 0:
            raise ValueError("edge times must be non-negative")


@dataclass
class PipelineJob:
    """A pipeline-parallel training job to be scheduled and simulated."""

    stages: list[StageProfile]
    edges: list[CommEdge] = field(default_factory=list)
    n_microbatches: int = 1

    def __post_init__(self) -> None:
        ids = [s.stage_id for s in self.stages]
        if ids != list(range(len(self.stages))):
            raise ValueError(f"stage ids must be 0..{len(self.stages) - 1}, got {ids}")
        if self.n_microbatches < 1:
            raise ValueError("need at least one micro-batch")
        for e in self.edges:
            if not (0 <= e.src_stage < len(self.stages)):
                raise ValueError(f"edge references unknown stage {e.src_stage}")
            if not (0 <= e.dst_stage < len(self.stages)):
                raise ValueError(f"edge references unknown stage {e.dst_stage}")

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def in_edges(self, stage: int) -> list[CommEdge]:
        """Edges feeding the forward pass of ``stage``."""
        return [e for e in self.edges if e.dst_stage == stage]

    def out_edges(self, stage: int) -> list[CommEdge]:
        return [e for e in self.edges if e.src_stage == stage]

    def total_compute_time(self) -> float:
        """Lower bound: serial compute of one full iteration, all stages."""
        return self.n_microbatches * max(
            (s.fwd_time + s.bwd_time for s in self.stages), default=0.0
        )
