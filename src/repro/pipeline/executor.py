"""Event-driven execution of a pipeline schedule with cross-mesh comm.

Each stage executes its ordered task list strictly in sequence; a task
additionally waits for its cross-mesh inputs:

* ``F(s, mb)`` waits for the forward activation of every in-edge, sent
  when ``F(src, mb)`` finished;
* ``B``/``Bx``\\ ``(s, mb)`` waits for the activation gradient of every
  out-edge, sent when the downstream ``B``/``Bx`` finished.

Communication is simulated in one of two modes:

``overlap=False`` ("Broadcast" in Fig. 9)
    synchronous sends and receives, like blocking NCCL calls issued in
    program order: after producing, the sender stage is busy for the
    transfer duration; before consuming, the receiver stage executes a
    recv that starts no earlier than the matching send and also busies
    the stage for the transfer duration.  Communication therefore sits
    on both stages' critical paths — the strict-dependency regime of
    Fig. 4(a).  (Real runtimes pair these as combined exchange ops,
    e.g. Megatron's send-forward-recv-backward, which is why modelling
    the two halves independently rather than as a strict rendezvous is
    both simpler and deadlock-free.)

``overlap=True``
    transfers run on a FIFO channel per directed stage pair, concurrently
    with compute; only data dependencies remain.

Activation memory is tracked per stage (+1 at each ``F``, −1 when the
micro-batch's backward — ``B`` or delayed ``Bw`` — completes) so the
schedules' peak-memory trade-off (§4, Table 1) is measurable.

**Fault tolerance** (optional, ``overlap=True``): given a
:class:`~repro.sim.faults.FaultSchedule`, cross-stage messages can be
*lost* — by the per-attempt drop rate, or because a stage's host
(``stage_hosts``) NIC flapped during the transfer.  A watchdog detects
the missing input after a backoff deadline and triggers a re-send on
the same channel; compute stragglers stretch task durations during
their windows.  Instead of hanging (or raising the deadlock error), a
faulted run surfaces a structured :class:`~repro.sim.faults.FaultReport`
on the result — ``recovered`` when every loss was re-sent in time,
``fatal`` when the retry budget ran out and stages stayed stuck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..sim.events import EventLoop
from ..sim.faults import FaultIncident, FaultReport, FaultSchedule, RetryPolicy
from .schedules import Task
from .stage import PipelineJob

__all__ = ["TimelineEntry", "CommEntry", "PipelineResult", "simulate_pipeline"]


@dataclass(frozen=True)
class TimelineEntry:
    stage: int
    kind: str
    microbatch: int
    start: float
    end: float


@dataclass(frozen=True)
class CommEntry:
    src_stage: int
    dst_stage: int
    direction: str  # "fwd" | "bwd"
    microbatch: int
    label: str
    start: float
    end: float


@dataclass(frozen=True)
class _Recv:
    """A blocking receive the consumer stage executes in program order."""

    edge_idx: int
    microbatch: int
    direction: str  # "fwd" | "bwd"

    @property
    def key(self) -> tuple[int, int, str]:
        return (self.edge_idx, self.microbatch, self.direction)

    def __repr__(self) -> str:
        return f"recv(e{self.edge_idx},{self.direction},mb{self.microbatch})"


_Item = Union[Task, _Recv]


@dataclass
class PipelineResult:
    """Outcome of simulating one training iteration.

    ``fault_report`` is ``None`` for fault-free runs; under fault
    injection it records whether the iteration recovered from every
    injected fault or ended fatally (some stages never finished).
    """

    iteration_time: float
    timeline: list[TimelineEntry]
    comms: list[CommEntry]
    peak_activation_counts: dict[int, int]
    stage_busy_time: dict[int, float]
    job: PipelineJob = field(repr=False)
    fault_report: Optional[FaultReport] = None

    def peak_memory_bytes(self, stage: int) -> float:
        """Weights/optimizer plus peak live activations of a stage."""
        prof = self.job.stages[stage]
        return prof.params_bytes + (
            self.peak_activation_counts.get(stage, 0) * prof.activation_bytes
        )

    def throughput_tflops(self, model_flops: float, n_devices: int) -> float:
        """Aggregate per-GPU TFLOPS given total model FLOPs/iteration."""
        if self.iteration_time <= 0:
            raise ValueError("iteration time must be positive")
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        return model_flops / self.iteration_time / n_devices / 1e12


def _validate_orders(job: PipelineJob, orders: list[list[Task]]) -> None:
    if len(orders) != job.n_stages:
        raise ValueError(f"need {job.n_stages} task lists, got {len(orders)}")
    m = job.n_microbatches
    for s, order in enumerate(orders):
        fwd = sorted(t.microbatch for t in order if t.kind == "F")
        if fwd != list(range(m)):
            raise ValueError(f"stage {s}: forwards {fwd} != 0..{m - 1}")
        fused = {t.microbatch for t in order if t.kind == "B"}
        bx = {t.microbatch for t in order if t.kind == "Bx"}
        bw = {t.microbatch for t in order if t.kind == "Bw"}
        if fused & (bx | bw):
            raise ValueError(f"stage {s}: mixes fused B and split Bx/Bw")
        forward_only = not (fused | bx | bw)
        if forward_only:
            continue  # inference: no backward pass at all
        if fused != set(range(m)) and (bx != set(range(m)) or bw != set(range(m))):
            raise ValueError(f"stage {s}: backward coverage incomplete")
        pos: dict[Task, int] = {}
        for i, t in enumerate(order):
            if t in pos:
                raise ValueError(f"stage {s}: duplicate task {t}")
            pos[t] = i
        for t in order:
            if t.kind in ("B", "Bx"):
                f = Task("F", t.microbatch)
                if f not in pos or pos[f] > pos[t]:
                    raise ValueError(
                        f"stage {s}: backward of mb {t.microbatch} precedes its forward"
                    )
            if t.kind == "Bw":
                x = Task("Bx", t.microbatch)
                if x not in pos or pos[x] > pos[t]:
                    raise ValueError(f"stage {s}: Bw{t.microbatch} precedes Bx")


def _insert_recvs(job: PipelineJob, orders: list[list[Task]]) -> list[list[_Item]]:
    """Blocking mode: put an explicit recv before each consuming task."""
    edge_idx = {id(e): i for i, e in enumerate(job.edges)}
    out: list[list[_Item]] = []
    for s, order in enumerate(orders):
        items: list[_Item] = []
        for t in order:
            if t.kind == "F":
                for e in sorted(job.in_edges(s), key=lambda e: edge_idx[id(e)]):
                    items.append(_Recv(edge_idx[id(e)], t.microbatch, "fwd"))
            elif t.kind in ("B", "Bx"):
                for e in sorted(job.out_edges(s), key=lambda e: edge_idx[id(e)]):
                    items.append(_Recv(edge_idx[id(e)], t.microbatch, "bwd"))
            items.append(t)
        out.append(items)
    return out


def simulate_pipeline(
    job: PipelineJob,
    orders: list[list[Task]],
    overlap: bool = True,
    faults: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    stage_hosts: Optional[Sequence[int]] = None,
) -> PipelineResult:
    """Simulate one training iteration; see module docstring.

    ``stage_hosts`` maps each stage to the host carrying it, so NIC
    flap windows in ``faults`` translate to lost cross-stage messages
    (a transfer overlapping a flap of either endpoint's host is lost).
    """
    _validate_orders(job, orders)
    if stage_hosts is not None and len(stage_hosts) != job.n_stages:
        raise ValueError(
            f"stage_hosts must map all {job.n_stages} stages, got {len(stage_hosts)}"
        )
    if faults is not None and not overlap and (
        faults.drop_rate > 0 or faults.flaps or faults.host_failures
    ):
        raise ValueError(
            "message loss injection needs overlap=True (blocking sends have "
            "no channel to re-send on); stragglers work in both modes"
        )
    policy = retry_policy or RetryPolicy()
    loop = EventLoop()
    n_stages = job.n_stages

    # -- fault bookkeeping --------------------------------------------
    incidents: list[FaultIncident] = []
    n_msg_retries = 0
    n_msg_abandoned = 0
    added_latency = 0.0
    # first expected arrival per message, to price recovery delay
    first_eta: dict[tuple[int, int, str], float] = {}

    items: list[list[_Item]] = (
        [list(o) for o in orders] if overlap else _insert_recvs(job, orders)
    )

    idx = [0] * n_stages
    running = [False] * n_stages
    stage_free_at = [0.0] * n_stages  # > now while blocked in sends
    timeline: list[TimelineEntry] = []
    comms: list[CommEntry] = []
    busy = dict.fromkeys(range(n_stages), 0.0)

    # Dependency arrival counters: ("F"|"B", stage, microbatch) -> count.
    arrived: dict[tuple[str, int, int], int] = {}
    need_fwd = [len(job.in_edges(s)) for s in range(n_stages)]
    need_bwd = [len(job.out_edges(s)) for s in range(n_stages)]

    act_count = dict.fromkeys(range(n_stages), 0)
    peak_act = dict.fromkeys(range(n_stages), 0)

    # Overlap mode: FIFO channel per (src, dst, direction).
    channel_free: dict[tuple[int, int, str], float] = {}
    # Blocking mode: when each transfer's data hits the wire.
    send_started: dict[tuple[int, int, str], float] = {}

    def deps_met(stage: int, t: Task) -> bool:
        if t.kind == "F":
            return arrived.get(("F", stage, t.microbatch), 0) >= need_fwd[stage]
        if t.kind in ("B", "Bx"):
            return arrived.get(("B", stage, t.microbatch), 0) >= need_bwd[stage]
        return True  # Bw: local only

    def duration(stage: int, t: Task) -> float:
        nonlocal added_latency
        prof = job.stages[stage]
        if t.kind == "F":
            base = prof.fwd_time
        elif t.kind == "B":
            base = prof.bwd_x_time + prof.bwd_w_time
        elif t.kind == "Bx":
            base = prof.bwd_x_time
        else:
            base = prof.bwd_w_time
        if faults is not None:
            factor = faults.straggler_factor(stage, loop.now)
            if factor > 1.0:
                incidents.append(
                    FaultIncident(
                        kind="straggler",
                        where=f"stage {stage} {t.kind}{t.microbatch}",
                        time=loop.now,
                        resolved=True,
                    )
                )
                added_latency += base * (factor - 1.0)
                return base * factor
        return base

    def arrival(kind: str, stage: int, mb: int) -> None:
        key = (kind, stage, mb)
        arrived[key] = arrived.get(key, 0) + 1
        try_start(stage)

    def message_lost(
        edge_i: int, mb: int, direction: str, attempt: int, cstart: float, cend: float
    ) -> bool:
        if faults is None:
            return False
        if faults.should_drop("pipe", edge_i, mb, direction, attempt):
            return True
        if stage_hosts is not None:
            e = job.edges[edge_i]
            for st in (e.src_stage, e.dst_stage):
                if faults.host_down_during(stage_hosts[st], cstart, cend):
                    return True
        return False

    def send_message(
        e, edge_i: int, dur: float, direction: str, target: int, mb: int,
        earliest: float, attempt: int,
    ) -> None:
        """One delivery attempt of a cross-stage message (overlap mode).

        A lost message is detected by the consumer's watchdog — the
        input is missing past its deadline — which triggers a re-send
        after the policy's backoff; the retry re-occupies the channel.
        """
        nonlocal n_msg_retries, n_msg_abandoned, added_latency
        key = (e.src_stage, e.dst_stage, direction)
        cstart = max(earliest, channel_free.get(key, 0.0))
        cend = cstart + dur
        channel_free[key] = cend
        label = e.label if attempt == 1 else f"{e.label}~retry{attempt - 1}"
        comms.append(
            CommEntry(e.src_stage, e.dst_stage, direction, mb, label, cstart, cend)
        )
        mkey = (edge_i, mb, direction)
        if attempt == 1:
            first_eta[mkey] = cend
        if not message_lost(edge_i, mb, direction, attempt, cstart, cend):
            if attempt > 1:
                added_latency += cend - first_eta[mkey]
            dep_kind = "F" if direction == "fwd" else "B"
            loop.call_at(cend, lambda: arrival(dep_kind, target, mb))
            return
        final = policy.exhausted(attempt)
        incidents.append(
            FaultIncident(
                kind="message-lost",
                where=f"edge {edge_i} {direction} mb{mb}",
                time=cend,
                attempt=attempt,
                resolved=not final,
            )
        )
        if final:
            n_msg_abandoned += 1
            return  # consumer stays stuck; surfaced as a fatal report
        n_msg_retries += 1
        grace = policy.backoff(attempt, "pipe", edge_i, mb, direction)
        loop.call_at(
            cend + grace,
            lambda: send_message(
                e, edge_i, dur, direction, target, mb, cend + grace, attempt + 1
            ),
        )

    def produced_edges(stage: int, t: Task):
        # comm_time() is called once per produced message: edges backed
        # by a compiled resharding price every micro-batch through the
        # plan cache + simulate_plan (the shared timing path).
        if t.kind == "F":
            return [(e, i, e.comm_time("fwd"), "fwd", e.dst_stage)
                    for i, e in enumerate(job.edges) if e.src_stage == stage]
        if t.kind in ("B", "Bx"):
            return [(e, i, e.comm_time("bwd"), "bwd", e.src_stage)
                    for i, e in enumerate(job.edges) if e.dst_stage == stage]
        return []

    def on_compute_done(stage: int, t: Task, start: float) -> None:
        finish = loop.now
        timeline.append(TimelineEntry(stage, t.kind, t.microbatch, start, finish))
        busy[stage] += finish - start
        if t.kind == "F":
            act_count[stage] += 1
            peak_act[stage] = max(peak_act[stage], act_count[stage])
        elif t.kind in ("B", "Bw"):
            act_count[stage] -= 1
        running[stage] = False
        idx[stage] += 1
        if overlap:
            for e, i, dur, direction, target in produced_edges(stage, t):
                send_message(e, i, dur, direction, target, t.microbatch, finish, 1)
            try_start(stage)
        else:
            # Blocking sends in program order: the stage stays busy for
            # the sum of its outgoing transfer durations; each transfer
            # hits the wire when its send begins.
            block_until = finish
            for e, i, dur, direction, target in produced_edges(stage, t):
                send_started[(i, t.microbatch, direction)] = block_until
                block_until += dur
                try_start(target)  # its recv may now be startable
            if block_until > finish:
                busy[stage] += block_until - finish
                stage_free_at[stage] = block_until
                loop.call_at(block_until, lambda s=stage: try_start(s))
            else:
                try_start(stage)

    def on_recv_done(stage: int, r: _Recv, start: float) -> None:
        e = job.edges[r.edge_idx]
        end = loop.now
        comms.append(
            CommEntry(
                e.src_stage, e.dst_stage, r.direction, r.microbatch, e.label,
                start, end,
            )
        )
        busy[stage] += end - start
        running[stage] = False
        idx[stage] += 1
        dep_kind = "F" if r.direction == "fwd" else "B"
        arrival(dep_kind, stage, r.microbatch)  # calls try_start(stage)
        try_start(stage)

    def try_start(stage: int) -> None:
        if running[stage] or idx[stage] >= len(items[stage]):
            return
        if loop.now < stage_free_at[stage] - 1e-15:
            return  # still blocked sending; wake-up event queued
        item = items[stage][idx[stage]]
        if isinstance(item, _Recv):
            sent_at = send_started.get(item.key)
            if sent_at is None:
                return  # matching send has not started yet
            e = job.edges[item.edge_idx]
            dur = e.comm_time(item.direction)
            end = max(loop.now, sent_at) + dur
            running[stage] = True
            start = loop.now
            loop.call_at(end, lambda s=stage, r=item: on_recv_done(s, r, start))
            return
        if not deps_met(stage, item):
            return
        running[stage] = True
        start = loop.now
        loop.call_after(
            duration(stage, item), lambda s=stage, t=item: on_compute_done(s, t, start)
        )

    for s in range(n_stages):
        try_start(s)
    loop.run()

    unfinished = [s for s in range(n_stages) if idx[s] < len(items[s])]
    if unfinished and faults is None:
        detail = {s: repr(items[s][idx[s]]) for s in unfinished}
        raise RuntimeError(
            f"pipeline deadlocked; stages stuck at tasks {detail} "
            f"(check warm-up depths and edge directions)"
        )
    report: Optional[FaultReport] = None
    if faults is not None:
        stuck = {s: repr(items[s][idx[s]]) for s in unfinished}
        if unfinished or n_msg_abandoned:
            status = "fatal"
        elif incidents:
            status = "recovered"
        else:
            status = "clean"
        report = FaultReport(
            status=status,
            n_faults=len(incidents),
            n_retries=n_msg_retries,
            n_abandoned=n_msg_abandoned,
            added_latency=added_latency,
            detail=f"stages stuck at tasks {stuck}" if stuck else "",
            incidents=incidents,
        )
    iteration_time = max(
        [e.end for e in timeline] + [c.end for c in comms], default=0.0
    )
    return PipelineResult(
        iteration_time=iteration_time,
        timeline=timeline,
        comms=comms,
        peak_activation_counts=peak_act,
        stage_busy_time=busy,
        job=job,
        fault_report=report,
    )
