"""Event-driven execution of a pipeline schedule with cross-mesh comm.

Each stage executes its ordered task list strictly in sequence; a task
additionally waits for its cross-mesh inputs:

* ``F(s, mb)`` waits for the forward activation of every in-edge, sent
  when ``F(src, mb)`` finished;
* ``B``/``Bx``\\ ``(s, mb)`` waits for the activation gradient of every
  out-edge, sent when the downstream ``B``/``Bx`` finished.

The executor runs on the shared runtime kernel
(:class:`~repro.runtime.kernel.Kernel`): stage occupancy is a kernel
resource token, cross-stage FIFO channels are kernel serial channels,
and every compute/transfer interval is emitted to the kernel's
telemetry bus.  The result object keeps **no private timeline lists** —
``timeline``/``comms`` are views rebuilt from the span stream, and the
scalar statistics (iteration time, busy time, activation peaks) are
folded from the same records.

Communication is simulated in one of two modes:

``overlap=False`` ("Broadcast" in Fig. 9)
    synchronous sends and receives, like blocking NCCL calls issued in
    program order: after producing, the sender stage is busy for the
    transfer duration; before consuming, the receiver stage executes a
    recv that starts no earlier than the matching send and also busies
    the stage for the transfer duration.  Communication therefore sits
    on both stages' critical paths — the strict-dependency regime of
    Fig. 4(a).  (Real runtimes pair these as combined exchange ops,
    e.g. Megatron's send-forward-recv-backward, which is why modelling
    the two halves independently rather than as a strict rendezvous is
    both simpler and deadlock-free.)

``overlap=True``
    transfers run on a FIFO channel per directed stage pair, concurrently
    with compute; only data dependencies remain.

Activation memory is tracked per stage as a telemetry gauge (+1 at each
``F``, −1 when the micro-batch's backward — ``B`` or delayed ``Bw`` —
completes) so the schedules' peak-memory trade-off (§4, Table 1) is
measurable.

**Fault tolerance** (optional, ``overlap=True``): given a
:class:`~repro.sim.faults.FaultSchedule`, cross-stage messages can be
*lost* — by the per-attempt drop rate, or because a stage's host
(``stage_hosts``) NIC flapped during the transfer.  A watchdog detects
the missing input after a backoff deadline and triggers a re-send on
the same channel; compute stragglers stretch task durations during
their windows.  Instead of hanging (or raising the deadlock error), a
faulted run surfaces a structured :class:`~repro.sim.faults.FaultReport`
on the result — ``recovered`` when every loss was re-sent in time,
``fatal`` when the retry budget ran out and stages stayed stuck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..runtime.kernel import Kernel
from ..runtime.telemetry import TelemetryBus
from ..sim.faults import FaultIncident, FaultReport, FaultSchedule, RetryPolicy
from .schedules import Task
from .stage import PipelineJob
from .timeline import CommEntry, TimelineEntry, comms_from_spans, timeline_from_spans

__all__ = ["TimelineEntry", "CommEntry", "PipelineResult", "simulate_pipeline"]


@dataclass(frozen=True)
class _Recv:
    """A blocking receive the consumer stage executes in program order."""

    edge_idx: int
    microbatch: int
    direction: str  # "fwd" | "bwd"

    @property
    def key(self) -> tuple[int, int, str]:
        return (self.edge_idx, self.microbatch, self.direction)

    def __repr__(self) -> str:
        return f"recv(e{self.edge_idx},{self.direction},mb{self.microbatch})"


_Item = Union[Task, _Recv]


@dataclass
class PipelineResult:
    """Outcome of simulating one training iteration.

    ``timeline`` and ``comms`` are derived views over the run's
    telemetry spans (``cat="compute"`` / ``cat="comm"``), not stored
    lists.  ``fault_report`` is ``None`` for fault-free runs; under
    fault injection it records whether the iteration recovered from
    every injected fault or ended fatally (some stages never finished).
    """

    telemetry: TelemetryBus = field(repr=False, compare=False)
    job: PipelineJob = field(repr=False)
    fault_report: Optional[FaultReport] = None
    _timeline_cache: Optional[tuple[int, list[TimelineEntry]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _comms_cache: Optional[tuple[int, list[CommEntry]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _stats_cache: Optional[tuple[float, dict[int, float], dict[int, int]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _stats(self) -> tuple[float, dict[int, float], dict[int, int]]:
        # One fold over the span stream, on first access — keeping it
        # out of simulate_pipeline itself so the per-event path stays
        # within the bench_runtime_overhead wall-time gate.
        if self._stats_cache is None:
            self._stats_cache = _fold_stats(self.telemetry, self.job.n_stages)
        return self._stats_cache

    @property
    def iteration_time(self) -> float:
        """Makespan: latest compute/comm span end in the stream."""
        return self._stats()[0]

    @property
    def stage_busy_time(self) -> dict[int, float]:
        """Seconds each stage spent computing (plus blocking sends)."""
        return self._stats()[1]

    @property
    def peak_activation_counts(self) -> dict[int, int]:
        """Peak live activations per stage, from the gauge samples."""
        return self._stats()[2]

    @property
    def timeline(self) -> list[TimelineEntry]:
        """Compute intervals, rebuilt from the telemetry span stream."""
        spans = self.telemetry.spans
        if self._timeline_cache is None or self._timeline_cache[0] != len(spans):
            self._timeline_cache = (len(spans), timeline_from_spans(spans))
        return self._timeline_cache[1]

    @property
    def comms(self) -> list[CommEntry]:
        """Transfer intervals, rebuilt from the telemetry span stream."""
        spans = self.telemetry.spans
        if self._comms_cache is None or self._comms_cache[0] != len(spans):
            self._comms_cache = (len(spans), comms_from_spans(spans))
        return self._comms_cache[1]

    def peak_memory_bytes(self, stage: int) -> float:
        """Weights/optimizer plus peak live activations of a stage."""
        prof = self.job.stages[stage]
        return prof.params_bytes + (
            self.peak_activation_counts.get(stage, 0) * prof.activation_bytes
        )

    def throughput_tflops(self, model_flops: float, n_devices: int) -> float:
        """Aggregate per-GPU TFLOPS given total model FLOPs/iteration."""
        if self.iteration_time <= 0:
            raise ValueError("iteration time must be positive")
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        return model_flops / self.iteration_time / n_devices / 1e12


def _validate_orders(job: PipelineJob, orders: list[list[Task]]) -> None:
    if len(orders) != job.n_stages:
        raise ValueError(f"need {job.n_stages} task lists, got {len(orders)}")
    m = job.n_microbatches
    for s, order in enumerate(orders):
        fwd = sorted(t.microbatch for t in order if t.kind == "F")
        if fwd != list(range(m)):
            raise ValueError(f"stage {s}: forwards {fwd} != 0..{m - 1}")
        fused = {t.microbatch for t in order if t.kind == "B"}
        bx = {t.microbatch for t in order if t.kind == "Bx"}
        bw = {t.microbatch for t in order if t.kind == "Bw"}
        if fused & (bx | bw):
            raise ValueError(f"stage {s}: mixes fused B and split Bx/Bw")
        forward_only = not (fused | bx | bw)
        if forward_only:
            continue  # inference: no backward pass at all
        if fused != set(range(m)) and (bx != set(range(m)) or bw != set(range(m))):
            raise ValueError(f"stage {s}: backward coverage incomplete")
        pos: dict[Task, int] = {}
        for i, t in enumerate(order):
            if t in pos:
                raise ValueError(f"stage {s}: duplicate task {t}")
            pos[t] = i
        for t in order:
            if t.kind in ("B", "Bx"):
                f = Task("F", t.microbatch)
                if f not in pos or pos[f] > pos[t]:
                    raise ValueError(
                        f"stage {s}: backward of mb {t.microbatch} precedes its forward"
                    )
            if t.kind == "Bw":
                x = Task("Bx", t.microbatch)
                if x not in pos or pos[x] > pos[t]:
                    raise ValueError(f"stage {s}: Bw{t.microbatch} precedes Bx")


def _insert_recvs(job: PipelineJob, orders: list[list[Task]]) -> list[list[_Item]]:
    """Blocking mode: put an explicit recv before each consuming task."""
    edge_idx = {id(e): i for i, e in enumerate(job.edges)}
    out: list[list[_Item]] = []
    for s, order in enumerate(orders):
        items: list[_Item] = []
        for t in order:
            if t.kind == "F":
                for e in sorted(job.in_edges(s), key=lambda e: edge_idx[id(e)]):
                    items.append(_Recv(edge_idx[id(e)], t.microbatch, "fwd"))
            elif t.kind in ("B", "Bx"):
                for e in sorted(job.out_edges(s), key=lambda e: edge_idx[id(e)]):
                    items.append(_Recv(edge_idx[id(e)], t.microbatch, "bwd"))
            items.append(t)
        out.append(items)
    return out


def _fold_stats(
    bus: TelemetryBus, n_stages: int
) -> tuple[float, dict[int, float], dict[int, int]]:
    """Fold iteration time, per-stage busy time and activation peaks
    out of the telemetry stream (the single source of truth)."""
    iteration_time = 0.0
    busy = dict.fromkeys(range(n_stages), 0.0)
    peak = dict.fromkeys(range(n_stages), 0)
    # Folded over the raw span rows (name, cat, track, start, end,
    # depth, parent, attrs) — this runs once per simulation, right
    # after the event loop drains, so it stays off the per-event path.
    for _name, cat, _track, start, end, _depth, _parent, a in bus.span_rows:
        if cat == "compute":
            if end > iteration_time:
                iteration_time = end
            busy[a["stage"]] += end - start
        elif cat == "comm":
            if end > iteration_time:
                iteration_time = end
            if "busy_stage" in a:  # blocking-mode recv occupies its stage
                busy[a["busy_stage"]] += end - start
        elif cat == "send":
            busy[a["stage"]] += end - start
    for name, track, _time, value in bus.counter_rows:
        if name == "activations" and track.startswith("stage:"):
            stage = int(track[6:])
            if value > peak[stage]:
                peak[stage] = int(value)
    return iteration_time, busy, peak


def simulate_pipeline(
    job: PipelineJob,
    orders: list[list[Task]],
    overlap: bool = True,
    faults: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    stage_hosts: Optional[Sequence[int]] = None,
) -> PipelineResult:
    """Simulate one training iteration; see module docstring.

    ``stage_hosts`` maps each stage to the host carrying it, so NIC
    flap windows in ``faults`` translate to lost cross-stage messages
    (a transfer overlapping a flap of either endpoint's host is lost).
    """
    _validate_orders(job, orders)
    if stage_hosts is not None and len(stage_hosts) != job.n_stages:
        raise ValueError(
            f"stage_hosts must map all {job.n_stages} stages, got {len(stage_hosts)}"
        )
    if faults is not None and not overlap and (
        faults.drop_rate > 0 or faults.flaps or faults.host_failures
    ):
        raise ValueError(
            "message loss injection needs overlap=True (blocking sends have "
            "no channel to re-send on); stragglers work in both modes"
        )
    policy = retry_policy or RetryPolicy()
    loop = Kernel()
    bus = loop.bus
    n_stages = job.n_stages

    # -- fault bookkeeping --------------------------------------------
    incidents: list[FaultIncident] = []
    n_msg_retries = 0
    n_msg_abandoned = 0
    added_latency = 0.0
    # first expected arrival per message, to price recovery delay
    first_eta: dict[tuple[int, int, str], float] = {}

    items: list[list[_Item]] = (
        [list(o) for o in orders] if overlap else _insert_recvs(job, orders)
    )

    idx = [0] * n_stages
    stage_track = [f"stage:{s}" for s in range(n_stages)]
    stage_res = [loop.resource(stage_track[s]) for s in range(n_stages)]
    stage_free_at = [0.0] * n_stages  # > now while blocked in sends
    act = [bus.gauge("activations", track=stage_track[s]) for s in range(n_stages)]
    # per-(src, dst, direction) channel + span-track cache: send_message
    # sits on the hot path, so the f-string/registry lookup happens once
    chan_cache: dict[tuple[int, int, str], tuple] = {}

    # Dependency arrival counters: ("F"|"B", stage, microbatch) -> count.
    arrived: dict[tuple[str, int, int], int] = {}
    need_fwd = [len(job.in_edges(s)) for s in range(n_stages)]
    need_bwd = [len(job.out_edges(s)) for s in range(n_stages)]

    # Blocking mode: when each transfer's data hits the wire.
    send_started: dict[tuple[int, int, str], float] = {}

    def deps_met(stage: int, t: Task) -> bool:
        if t.kind == "F":
            return arrived.get(("F", stage, t.microbatch), 0) >= need_fwd[stage]
        if t.kind in ("B", "Bx"):
            return arrived.get(("B", stage, t.microbatch), 0) >= need_bwd[stage]
        return True  # Bw: local only

    def duration(stage: int, t: Task) -> float:
        nonlocal added_latency
        prof = job.stages[stage]
        if t.kind == "F":
            base = prof.fwd_time
        elif t.kind == "B":
            base = prof.bwd_x_time + prof.bwd_w_time
        elif t.kind == "Bx":
            base = prof.bwd_x_time
        else:
            base = prof.bwd_w_time
        if faults is not None:
            factor = faults.straggler_factor(stage, loop.now)
            if factor > 1.0:
                incidents.append(
                    FaultIncident(
                        kind="straggler",
                        where=f"stage {stage} {t.kind}{t.microbatch}",
                        time=loop.now,
                        resolved=True,
                    )
                )
                added_latency += base * (factor - 1.0)
                return base * factor
        return base

    def arrival(kind: str, stage: int, mb: int) -> None:
        key = (kind, stage, mb)
        arrived[key] = arrived.get(key, 0) + 1
        try_start(stage)

    def message_lost(
        edge_i: int, mb: int, direction: str, attempt: int, cstart: float, cend: float
    ) -> bool:
        if faults is None:
            return False
        if faults.should_drop("pipe", edge_i, mb, direction, attempt):
            return True
        if stage_hosts is not None:
            e = job.edges[edge_i]
            for st in (e.src_stage, e.dst_stage):
                if faults.host_down_during(stage_hosts[st], cstart, cend):
                    return True
        return False

    def send_message(
        e, edge_i: int, dur: float, direction: str, target: int, mb: int,
        earliest: float, attempt: int,
    ) -> None:
        """One delivery attempt of a cross-stage message (overlap mode).

        A lost message is detected by the consumer's watchdog — the
        input is missing past its deadline — which triggers a re-send
        after the policy's backoff; the retry re-occupies the channel.
        """
        nonlocal n_msg_retries, n_msg_abandoned, added_latency
        ckey = (e.src_stage, e.dst_stage, direction)
        cached = chan_cache.get(ckey)
        if cached is None:
            cname = f"{e.src_stage}->{e.dst_stage}:{direction}"
            cached = (loop.channel(cname), "chan:" + cname)
            chan_cache[ckey] = cached
        chan, ctrack = cached
        cstart = chan.reserve(earliest, dur)
        cend = cstart + dur
        label = e.label if attempt == 1 else f"{e.label}~retry{attempt - 1}"
        bus.span(
            label, "comm", ctrack, cstart, cend,
            {"src_stage": e.src_stage, "dst_stage": e.dst_stage,
             "direction": direction, "microbatch": mb, "label": label},
        )
        mkey = (edge_i, mb, direction)
        if attempt == 1:
            first_eta[mkey] = cend
        if not message_lost(edge_i, mb, direction, attempt, cstart, cend):
            if attempt > 1:
                added_latency += cend - first_eta[mkey]
            dep_kind = "F" if direction == "fwd" else "B"
            loop.call_at(cend, lambda: arrival(dep_kind, target, mb))
            return
        final = policy.exhausted(attempt)
        incidents.append(
            FaultIncident(
                kind="message-lost",
                where=f"edge {edge_i} {direction} mb{mb}",
                time=cend,
                attempt=attempt,
                resolved=not final,
            )
        )
        if final:
            n_msg_abandoned += 1
            return  # consumer stays stuck; surfaced as a fatal report
        n_msg_retries += 1
        grace = policy.backoff(attempt, "pipe", edge_i, mb, direction)
        loop.call_at(
            cend + grace,
            lambda: send_message(
                e, edge_i, dur, direction, target, mb, cend + grace, attempt + 1
            ),
        )

    def produced_edges(stage: int, t: Task):
        # comm_time() is called once per produced message: edges backed
        # by a compiled resharding price every micro-batch through the
        # plan cache + simulate_plan (the shared timing path).
        if t.kind == "F":
            return [(e, i, e.comm_time("fwd"), "fwd", e.dst_stage)
                    for i, e in enumerate(job.edges) if e.src_stage == stage]
        if t.kind in ("B", "Bx"):
            return [(e, i, e.comm_time("bwd"), "bwd", e.src_stage)
                    for i, e in enumerate(job.edges) if e.dst_stage == stage]
        return []

    def on_compute_done(stage: int, t: Task, start: float) -> None:
        finish = loop.now
        bus.span(
            f"{t.kind}{t.microbatch}", "compute", stage_track[stage], start, finish,
            {"stage": stage, "kind": t.kind, "microbatch": t.microbatch},
        )
        if t.kind == "F":
            act[stage].add(1)
        elif t.kind in ("B", "Bw"):
            act[stage].add(-1)
        stage_res[stage].release()
        idx[stage] += 1
        if overlap:
            for e, i, dur, direction, target in produced_edges(stage, t):
                send_message(e, i, dur, direction, target, t.microbatch, finish, 1)
            try_start(stage)
        else:
            # Blocking sends in program order: the stage stays busy for
            # the sum of its outgoing transfer durations; each transfer
            # hits the wire when its send begins.
            block_until = finish
            for e, i, dur, direction, target in produced_edges(stage, t):
                send_started[(i, t.microbatch, direction)] = block_until
                block_until += dur
                try_start(target)  # its recv may now be startable
            if block_until > finish:
                bus.span(
                    f"send:{t.kind}{t.microbatch}", "send", stage_track[stage],
                    finish, block_until, {"stage": stage},
                )
                stage_free_at[stage] = block_until
                loop.call_at(block_until, lambda s=stage: try_start(s))
            else:
                try_start(stage)

    def on_recv_done(stage: int, r: _Recv, start: float) -> None:
        e = job.edges[r.edge_idx]
        end = loop.now
        bus.span(
            e.label, "comm", f"chan:{e.src_stage}->{e.dst_stage}:{r.direction}",
            start, end,
            {"src_stage": e.src_stage, "dst_stage": e.dst_stage,
             "direction": r.direction, "microbatch": r.microbatch,
             "label": e.label, "busy_stage": stage},
        )
        stage_res[stage].release()
        idx[stage] += 1
        dep_kind = "F" if r.direction == "fwd" else "B"
        arrival(dep_kind, stage, r.microbatch)  # calls try_start(stage)
        try_start(stage)

    def try_start(stage: int) -> None:
        if stage_res[stage].available == 0 or idx[stage] >= len(items[stage]):
            return
        if loop.now < stage_free_at[stage] - 1e-15:
            return  # still blocked sending; wake-up event queued
        item = items[stage][idx[stage]]
        if isinstance(item, _Recv):
            sent_at = send_started.get(item.key)
            if sent_at is None:
                return  # matching send has not started yet
            e = job.edges[item.edge_idx]
            dur = e.comm_time(item.direction)
            end = max(loop.now, sent_at) + dur
            stage_res[stage].try_acquire()
            start = loop.now
            loop.call_at(end, lambda s=stage, r=item: on_recv_done(s, r, start))
            return
        if not deps_met(stage, item):
            return
        stage_res[stage].try_acquire()
        start = loop.now
        loop.call_after(
            duration(stage, item), lambda s=stage, t=item: on_compute_done(s, t, start)
        )

    for s in range(n_stages):
        try_start(s)
    loop.run()

    unfinished = [s for s in range(n_stages) if idx[s] < len(items[s])]
    if unfinished and faults is None:
        detail = {s: repr(items[s][idx[s]]) for s in unfinished}
        raise RuntimeError(
            f"pipeline deadlocked; stages stuck at tasks {detail} "
            f"(check warm-up depths and edge directions)"
        )
    report: Optional[FaultReport] = None
    if faults is not None:
        stuck = {s: repr(items[s][idx[s]]) for s in unfinished}
        if unfinished or n_msg_abandoned:
            status = "fatal"
        elif incidents:
            status = "recovered"
        else:
            status = "clean"
        report = FaultReport(
            status=status,
            n_faults=len(incidents),
            n_retries=n_msg_retries,
            n_abandoned=n_msg_abandoned,
            added_latency=added_latency,
            detail=f"stages stuck at tasks {stuck}" if stuck else "",
            incidents=incidents,
        )
    return PipelineResult(telemetry=bus, job=job, fault_report=report)
