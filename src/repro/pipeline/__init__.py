"""Pipeline-parallel schedules and execution (paper §4)."""

from .executor import PipelineResult, simulate_pipeline
from .interleaved import (
    ChunkTask,
    InterleavedJob,
    InterleavedResult,
    interleaved_order,
    simulate_interleaved,
)
from .memory import (
    StageMemory,
    analytic_peak_inflight,
    eager_memory_increase,
    memory_report,
)
from .schedules import (
    SCHEDULE_NAMES,
    Task,
    eager_warmup,
    fifo_warmup,
    gpipe_order,
    one_f_one_b_order,
    schedule_job,
    split_backward,
    stage_order,
)
from .stage import CommEdge, PipelineJob, StageProfile
from .timeline import CommEntry, TimelineEntry, comms_from_spans, timeline_from_spans

__all__ = [
    "StageProfile",
    "CommEdge",
    "PipelineJob",
    "Task",
    "SCHEDULE_NAMES",
    "gpipe_order",
    "one_f_one_b_order",
    "stage_order",
    "schedule_job",
    "split_backward",
    "fifo_warmup",
    "eager_warmup",
    "simulate_pipeline",
    "PipelineResult",
    "TimelineEntry",
    "CommEntry",
    "timeline_from_spans",
    "comms_from_spans",
    "analytic_peak_inflight",
    "eager_memory_increase",
    "memory_report",
    "StageMemory",
    "InterleavedJob",
    "InterleavedResult",
    "ChunkTask",
    "interleaved_order",
    "simulate_interleaved",
]
