"""Synchronous pipeline schedules: GPipe, 1F1B, and eager-1F1B (§4).

A schedule is, per stage, an ordered list of compute tasks the stage
executes strictly in sequence.  Task kinds:

* ``F``  — forward of one micro-batch;
* ``B``  — full backward (``Bx`` + ``Bw`` fused);
* ``Bx`` — backward w.r.t. activations (produces the gradient that
  crosses meshes);
* ``Bw`` — backward w.r.t. weights (delayable, §4's *backward weight
  delaying*).

1F1B runs ``#stages - i`` warm-up forwards at (0-indexed) stage ``i``;
eager-1F1B runs ``2 * (#stages - i - 1) + 1``, shifting forwards earlier
to open gaps into which cross-mesh communication can be overlapped.
Both reduce to the same steady one-forward-one-backward pattern and have
identical latency when communication is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = [
    "Task",
    "TaskKind",
    "gpipe_order",
    "one_f_one_b_order",
    "eager_warmup",
    "fifo_warmup",
    "stage_order",
    "schedule_job",
    "split_backward",
    "SCHEDULE_NAMES",
]

TaskKind = Literal["F", "B", "Bx", "Bw"]

SCHEDULE_NAMES = ("gpipe", "1f1b", "eager_1f1b")


@dataclass(frozen=True)
class Task:
    """One compute task in a stage's ordered list."""

    kind: str
    microbatch: int

    def __repr__(self) -> str:
        return f"{self.kind}{self.microbatch}"


def fifo_warmup(stage: int, n_stages: int) -> int:
    """1F1B warm-up depth at ``stage`` (paper: ``#stages - i + 1``,
    1-indexed; equivalently ``#stages - i`` 0-indexed)."""
    if not 0 <= stage < n_stages:
        raise ValueError(f"stage {stage} outside [0, {n_stages})")
    return n_stages - stage


def eager_warmup(stage: int, n_stages: int) -> int:
    """Eager-1F1B warm-up depth: ``2 * (#stages - i) + 1`` 1-indexed,
    i.e. ``2 * (n_stages - stage - 1) + 1`` 0-indexed."""
    if not 0 <= stage < n_stages:
        raise ValueError(f"stage {stage} outside [0, {n_stages})")
    return 2 * (n_stages - stage - 1) + 1


def gpipe_order(n_microbatches: int) -> list[Task]:
    """All forwards, then all backwards (every stage the same)."""
    fwd = [Task("F", i) for i in range(n_microbatches)]
    bwd = [Task("B", i) for i in range(n_microbatches)]
    return fwd + bwd


def one_f_one_b_order(n_microbatches: int, warmup: int) -> list[Task]:
    """Warm-up forwards, then alternate backward/forward, then drain."""
    if warmup < 1:
        raise ValueError("warmup must be >= 1")
    w = min(warmup, n_microbatches)
    seq = [Task("F", i) for i in range(w)]
    nf, nb = w, 0
    while nb < n_microbatches:
        seq.append(Task("B", nb))
        nb += 1
        if nf < n_microbatches:
            seq.append(Task("F", nf))
            nf += 1
    return seq


def stage_order(
    schedule: str, stage: int, n_stages: int, n_microbatches: int
) -> list[Task]:
    """The ordered task list of one stage under a named schedule."""
    if schedule == "gpipe":
        return gpipe_order(n_microbatches)
    if schedule == "1f1b":
        return one_f_one_b_order(n_microbatches, fifo_warmup(stage, n_stages))
    if schedule == "eager_1f1b":
        return one_f_one_b_order(n_microbatches, eager_warmup(stage, n_stages))
    raise ValueError(f"unknown schedule {schedule!r}; options: {SCHEDULE_NAMES}")


def split_backward(order: list[Task], delay_slots: int = 1) -> list[Task]:
    """Split each ``B`` into ``Bx`` + ``Bw`` and delay ``Bw``.

    ``Bw`` is pushed ``delay_slots`` compute tasks later than its
    natural position (bounded by the end of the list), so the cross-mesh
    gradient communication triggered by ``Bx`` overlaps the weight-
    gradient computation — §4's backward weight delaying.  With
    ``delay_slots=0`` the split is positional only (``Bx`` directly
    followed by ``Bw``), which is behaviourally identical to fused ``B``.
    """
    if delay_slots < 0:
        raise ValueError("delay_slots must be >= 0")
    out: list[Task] = []
    pending: list[tuple[int, Task]] = []  # (remaining slots, Bw task)

    def advance() -> None:
        """One original task was emitted; age pending Bw tasks."""
        nonlocal pending
        pending = [(left - 1, t) for left, t in pending]
        while pending and pending[0][0] <= 0:
            out.append(pending.pop(0)[1])

    for t in order:
        if t.kind == "B":
            out.append(Task("Bx", t.microbatch))
            advance()
            pending.append((delay_slots, Task("Bw", t.microbatch)))
        else:
            out.append(t)
            advance()
    out.extend(t for _, t in pending)
    return out


def schedule_job(
    schedule: str,
    n_stages: int,
    n_microbatches: int,
    delay_bw_weight: bool = False,
    delay_slots: int = 1,
) -> list[list[Task]]:
    """Per-stage ordered task lists for the whole job."""
    orders = [
        stage_order(schedule, s, n_stages, n_microbatches) for s in range(n_stages)
    ]
    if delay_bw_weight:
        orders = [split_backward(o, delay_slots) for o in orders]
    return orders
