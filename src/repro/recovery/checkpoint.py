"""Iteration-boundary checkpointing with a simulated write cost model.

State is checkpointed at iteration boundaries only (the pipeline is
drained, so a checkpoint is a consistent cut by construction).  Each
host writes the shards it owns to durable storage at
``write_bandwidth``; hosts write in parallel, so the charged wall-clock
cost of one checkpoint is the *maximum* per-host write time.

With ``replicate=True`` (the default) stage ``s``'s checkpoint is also
buddy-replicated onto a peer stage's mesh — by default ``(s+1) % S``,
but when the cluster declares failure domains :func:`buddy_assignment`
prefers the first ring peer whose hosts share *no* domain with the
primary's, so a rack/PDU loss cannot take out a shard and its only
replica together (:mod:`repro.analysis.domains` checks this statically
as ``F002``).  That costs extra
bytes per host but buys fail-stop survivability: when a host dies, every
shard it held still exists on a different host, and recovery becomes a
genuine cross-mesh resharding problem (buddy mesh -> rebuilt mesh)
solved with the paper's own machinery.  Without replication the loss of
any primary host makes its stage's state unrecoverable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.mesh import DeviceMesh

__all__ = [
    "CheckpointConfig",
    "Checkpoint",
    "CheckpointStore",
    "buddy_assignment",
    "optimal_interval",
]


def buddy_assignment(meshes: list[DeviceMesh]) -> list[int]:
    """Pick a buddy stage for each stage, avoiding shared failure domains.

    Returns ``out`` where stage ``s``'s checkpoint is buddy-replicated
    onto ``meshes[out[s]]``.  For each stage the candidates are scanned
    in ring order ``(s+1) % S, (s+2) % S, ...`` and the first whose
    hosts share no :class:`~repro.sim.cluster.FailureDomain` with the
    primary's hosts wins; when every peer shares a domain (or none are
    declared) the classic ring buddy ``(s+1) % S`` is kept, preserving
    the original behavior on domain-free clusters.
    """
    n = len(meshes)
    out: list[int] = []
    for s, primary in enumerate(meshes):
        spec = primary.cluster.spec
        chosen = (s + 1) % n
        if spec.failure_domains:
            for k in range(1, n):
                cand = (s + k) % n
                if not any(
                    spec.shares_domain(hp, hb)
                    for hp in primary.hosts
                    for hb in meshes[cand].hosts
                ):
                    chosen = cand
                    break
        out.append(chosen)
    return out


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing policy and storage cost model.

    ``interval`` is in iterations; ``0`` disables checkpointing (a
    fault-free baseline — any permanent failure is then unrecoverable).
    Bandwidths are per-host, bytes/second, against durable storage.
    ``detection_latency`` is the time between a host dying and the
    runtime learning about it (health-check period + timeout).
    """

    interval: int = 10
    write_bandwidth: float = 2e9
    read_bandwidth: float = 4e9
    replicate: bool = True
    detection_latency: float = 5.0

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ValueError("storage bandwidths must be positive")
        if self.detection_latency < 0:
            raise ValueError("detection_latency must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.interval > 0


@dataclass
class Checkpoint:
    """One consistent snapshot of per-stage training state.

    ``arrays[s]`` is the *global* (unsharded) state of stage ``s`` —
    the logical content; physically it lives sharded over
    ``primary_meshes[s]`` and, when replicated, also over
    ``buddy_meshes[s]`` (the :func:`buddy_assignment` peer mesh at
    snapshot time).
    """

    iteration: int
    time: float
    arrays: dict[int, np.ndarray]
    primary_meshes: list[DeviceMesh]
    buddy_meshes: Optional[list[DeviceMesh]] = None

    @property
    def n_stages(self) -> int:
        return len(self.arrays)

    def replicas_of(self, stage: int) -> list[DeviceMesh]:
        """Meshes holding a full sharded copy of ``stage``'s state."""
        out = [self.primary_meshes[stage]]
        if self.buddy_meshes is not None:
            out.append(self.buddy_meshes[stage])
        return out

    def state_bytes(self, stage: int) -> int:
        return self.arrays[stage].nbytes


class CheckpointStore:
    """Holds the latest checkpoint and prices writes and reads.

    The store keeps only the most recent snapshot (the usual production
    policy for iteration checkpoints) plus counters for reporting.
    """

    def __init__(self, config: CheckpointConfig) -> None:
        self.config = config
        self.latest: Optional[Checkpoint] = None
        self.n_writes = 0
        self.total_write_time = 0.0

    # -- cost model ----------------------------------------------------
    def _bytes_per_host(
        self, arrays: dict[int, np.ndarray], meshes: list[DeviceMesh]
    ) -> dict[int, float]:
        """Bytes each host must persist for one snapshot."""
        per_host: dict[int, float] = {}
        buddies = buddy_assignment(meshes) if self.config.replicate else []
        for s, mesh in enumerate(meshes):
            copies = [mesh]
            if self.config.replicate:
                copies.append(meshes[buddies[s]])
            for m in copies:
                share = arrays[s].nbytes / max(m.n_devices, 1)
                for d in m.devices:
                    h = m.cluster.host_of(d)
                    per_host[h] = per_host.get(h, 0.0) + share
        return per_host

    def write_time(
        self, arrays: dict[int, np.ndarray], meshes: list[DeviceMesh]
    ) -> float:
        """Wall-clock cost of one checkpoint (max over parallel hosts)."""
        per_host = self._bytes_per_host(arrays, meshes)
        if not per_host:
            return 0.0
        return max(per_host.values()) / self.config.write_bandwidth

    def read_time(self, checkpoint: Checkpoint) -> float:
        """Wall-clock cost of loading the snapshot back (max over hosts)."""
        per_host = self._bytes_per_host(
            checkpoint.arrays, checkpoint.primary_meshes
        )
        if not per_host:
            return 0.0
        return max(per_host.values()) / self.config.read_bandwidth

    # -- snapshotting --------------------------------------------------
    def write(
        self,
        iteration: int,
        time: float,
        state: dict[int, np.ndarray],
        meshes: list[DeviceMesh],
    ) -> float:
        """Snapshot ``state`` at ``iteration``; returns the charged cost."""
        if not self.config.enabled:
            return 0.0
        self.latest = Checkpoint(
            iteration=iteration,
            time=time,
            arrays={s: a.copy() for s, a in state.items()},
            primary_meshes=list(meshes),
            buddy_meshes=(
                [meshes[b] for b in buddy_assignment(meshes)]
                if self.config.replicate
                else None
            ),
        )
        cost = self.write_time(state, meshes)
        self.n_writes += 1
        self.total_write_time += cost
        return cost


def optimal_interval(mtbf: float, checkpoint_cost: float) -> float:
    """Young/Daly optimal checkpoint interval, in seconds.

    First-order optimum ``sqrt(2 * delta * MTBF)`` for checkpoint cost
    ``delta`` and exponential failures with the given mean — the
    analytic baseline the recovery experiments sweep against.
    """
    if mtbf <= 0 or checkpoint_cost < 0:
        raise ValueError("mtbf must be positive and checkpoint_cost >= 0")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)
