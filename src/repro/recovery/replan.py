"""Failure-time replanning: rebuild the placement, reshard the state.

When a host dies permanently the job's old placement is gone for good.
Replanning answers three questions with the paper's own machinery:

* **Where does each stage run now?**  Substitute a warm spare host for
  the dead one when available (mesh shapes preserved), otherwise
  *shrink*: recompute the stage -> mesh placement over the surviving
  hosts, co-locating stages when there are fewer hosts than stages.
* **How does checkpointed state reach the new placement?**  Each stage
  whose mesh changed gets a cross-mesh :class:`ReshardingTask` from a
  surviving checkpoint replica (primary mesh, or the buddy mesh when
  the primary lost a host) to the rebuilt mesh — compiled by the
  failure-aware strategies, scheduled, and timed on the flow simulator
  exactly like any other resharding in this repo.
* **Did the data actually arrive?**  Every step is also executed on the
  NumPy data plane and certified by
  :func:`repro.core.verify_data.verify_delivery` — exact-once delivery
  of every element of every destination tile, through broadcast
  re-roots and retries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.plan_checker import check_plan
from ..compiler import CompileContext, compile_resharding
from ..core.data import apply_plan
from ..core.executor import TimingResult, simulate_plan
from ..core.mesh import DeviceMesh
from ..core.plan import BroadcastOp, CommPlan, MulticastOp, SendOp
from ..core.slices import region_intersection
from ..core.task import ReshardingTask
from ..core.tensor import DistributedTensor
from ..core.verify_data import IntegrityError, IntegrityReport, verify_delivery
from ..models.parallel import ParallelJobSpec
from ..sim.cluster import Cluster
from ..sim.faults import FaultSchedule, RetryPolicy
from .checkpoint import Checkpoint

__all__ = [
    "RecoveryError",
    "ReshardStep",
    "RecoveryPlan",
    "place_stages",
    "replan",
]

#: sharding spec for 1-D state tensors: dim 0 sharded over mesh axis 1,
#: used with meshes reshaped to (1, n) so every device holds one slice.
STATE_SPEC = "S1"


class RecoveryError(RuntimeError):
    """The job cannot be recovered (state lost or no hosts left)."""


def place_stages(
    cluster: Cluster, n_stages: int, hosts: list[int]
) -> list[DeviceMesh]:
    """Pack ``n_stages`` onto ``hosts``, splitting devices when shrunk.

    Stages are assigned round-robin; a host carrying ``k`` stages splits
    its devices into ``k`` contiguous groups, so every stage keeps at
    least one device.  Meshes come out as ``(1, group)`` grids — the
    state resharding layout.  Raises when even one device per stage
    cannot be found.
    """
    if not hosts:
        raise RecoveryError("no surviving hosts to place stages on")
    dph = cluster.spec.devices_per_host
    if n_stages > len(hosts) * dph:
        raise RecoveryError(
            f"cannot place {n_stages} stages on {len(hosts)} host(s) "
            f"with {dph} device(s) each"
        )
    by_host: dict[int, list[int]] = {h: [] for h in hosts}
    for s in range(n_stages):
        by_host[hosts[s % len(hosts)]].append(s)
    meshes: dict[int, DeviceMesh] = {}
    for h, stages in by_host.items():
        if not stages:
            continue
        devs = [d.device_id for d in cluster.hosts[h].devices]
        n_groups = len(stages)
        base, extra = divmod(len(devs), n_groups)
        pos = 0
        for k, s in enumerate(stages):
            width = base + (1 if k < extra else 0)
            meshes[s] = DeviceMesh(cluster, [devs[pos : pos + width]])
            pos += width
    return [meshes[s] for s in range(n_stages)]


@dataclass
class ReshardStep:
    """One certified state movement: checkpoint replica -> new mesh."""

    stage: int
    src_mesh: DeviceMesh = field(repr=False)
    dst_mesh: DeviceMesh = field(repr=False)
    task: ReshardingTask = field(repr=False)
    timing: TimingResult = field(repr=False)
    integrity: IntegrityReport
    restored: np.ndarray = field(repr=False)

    @property
    def time(self) -> float:
        return self.timing.total_time

    @property
    def bytes_moved(self) -> float:
        return self.timing.bytes_cross_host + self.timing.bytes_intra_host


@dataclass
class RecoveryPlan:
    """Outcome of replanning after one (or more) permanent host losses."""

    mode: str  # "substitute" | "shrink"
    dead_hosts: frozenset[int]
    used_spares: tuple[int, ...]
    new_meshes: list[DeviceMesh] = field(repr=False)
    steps: list[ReshardStep] = field(repr=False, default_factory=list)

    @property
    def reshard_time(self) -> float:
        """Wall-clock of the state restore: steps run concurrently
        (disjoint stage pairs), so the slowest one dominates."""
        return max((s.time for s in self.steps), default=0.0)

    @property
    def certified(self) -> bool:
        return all(s.integrity.certified for s in self.steps)

    @property
    def bytes_moved(self) -> float:
        return sum(s.bytes_moved for s in self.steps)


def _substitute(mesh: DeviceMesh, mapping: dict[int, int]) -> DeviceMesh:
    """Rebuild ``mesh`` with each dead host's devices swapped for the
    same-slot devices of its replacement (mesh shape preserved)."""
    cluster = mesh.cluster
    dph = cluster.spec.devices_per_host
    grid = []
    for row in mesh.grid:
        new_row = []
        for d in row:
            h = cluster.host_of(d)
            if h in mapping:
                local = cluster.device(d).local_id
                new_row.append(mapping[h] * dph + local)
            else:
                new_row.append(d)
        grid.append(new_row)
    return DeviceMesh(cluster, grid)


def _flat(mesh: DeviceMesh) -> DeviceMesh:
    """The same devices as a (1, n) mesh — the state sharding layout."""
    if mesh.shape[0] == 1:
        return mesh
    return mesh.reshaped(1, mesh.n_devices)


def _trim_local_deliveries(plan: CommPlan) -> CommPlan:
    """Drop deliveries of regions the receiver already holds locally.

    When source and destination meshes overlap (shrunk placements), the
    cross-mesh strategies — written for disjoint meshes — still ship
    every destination tile over the network, while the data plane also
    reuses the local source shard.  That redundancy would (correctly)
    fail exact-once certification, so recovery plans are trimmed first:
    a receiver whose own source shard fully contains an op's region is
    removed from it.  Only Send/Broadcast ops are trimmed; composite
    collectives (scatter + all-gather) are left intact, so with the
    all-gather strategy an overlapping reshard may still fail strict
    verification — the broadcast-family strategies are the supported
    recovery path.
    """
    task = plan.task
    holders = set(task.src_mesh.devices) & set(task.dst_mesh.devices)
    if not holders:
        return plan

    def holds(device: int, region) -> bool:
        if device not in holders:
            return False
        own = task.src_grid.device_region(device)
        return region_intersection(own, region) == region

    kept: list = []
    dropped: set[int] = set()
    changed = False
    for op in plan.ops:
        if isinstance(op, SendOp) and holds(op.receiver, op.region):
            dropped.add(op.op_id)
            changed = True
            continue
        if isinstance(op, (BroadcastOp, MulticastOp)):
            recv = tuple(r for r in op.receivers if not holds(r, op.region))
            if not recv:
                dropped.add(op.op_id)
                changed = True
                continue
            if len(recv) != len(op.receivers):
                op = dataclasses.replace(op, receivers=recv)
                changed = True
        kept.append(op)
    if not changed:
        return plan
    ops = [
        dataclasses.replace(
            op, deps=tuple(d for d in op.deps if d not in dropped)
        )
        if any(d in dropped for d in op.deps)
        else op
        for op in kept
    ]
    return dataclasses.replace(plan, ops=ops)


def replan(
    spec: ParallelJobSpec,
    checkpoint: Checkpoint,
    faults: FaultSchedule,
    failure_time: float,
    used_spares: frozenset[int] = frozenset(),
    strategy: str = "broadcast",
    retry_policy: Optional[RetryPolicy] = None,
) -> RecoveryPlan:
    """Rebuild the placement after the failures known at ``failure_time``
    and compile + execute + certify the state resharding.

    ``used_spares`` are spares already promoted by earlier recoveries
    (they now carry work and are no longer available).  The returned
    plan's ``new_meshes`` replace ``spec.stage_meshes``; communication
    edges must then be re-resolved on the new topology by the caller.
    """
    cluster = spec.cluster
    dead = set(faults.failed_hosts(failure_time))
    working = {h for m in spec.stage_meshes for h in m.hosts}
    dead_working = sorted(dead & working)
    if not dead_working:
        raise RecoveryError(
            f"no working host is dead at t={failure_time:g}; nothing to replan"
        )
    # Spares sharing a failure domain with a dead host are suspect: the
    # domain event that killed the worker may claim them next (or
    # already did — a down spare is no spare).  Prefer out-of-domain,
    # currently-up spares; risky ones are kept as a last resort.
    cspec = cluster.spec
    spares = sorted(
        (
            h
            for h in cluster.spare_host_ids
            if h not in dead and h not in used_spares
        ),
        key=lambda h: (
            faults.host_down(h, failure_time),
            any(cspec.shares_domain(h, d) for d in sorted(dead)),
            h,
        ),
    )

    n_stages = len(spec.stage_meshes)
    if len(spares) >= len(dead_working):
        mode = "substitute"
        promoted = tuple(spares[: len(dead_working)])
        mapping = dict(zip(dead_working, promoted))
        new_meshes = [_substitute(m, mapping) for m in spec.stage_meshes]
    else:
        mode = "shrink"
        promoted = tuple(spares)  # shrink still absorbs any idle spares
        survivors = sorted((working | set(promoted)) - dead)
        new_meshes = place_stages(cluster, n_stages, survivors)

    # The resharding strategies must see the cluster as it is *now*:
    # re-anchor the schedule so every past failure is dead at t=0.
    faults_now = faults.shifted(failure_time)

    steps: list[ReshardStep] = []
    for s in range(n_stages):
        old = checkpoint.primary_meshes[s]
        new = new_meshes[s]
        if set(new.devices) == set(old.devices) and not (
            set(old.hosts) & dead
        ):
            continue  # state reloads locally from the host's own disk
        src_mesh = None
        for replica in checkpoint.replicas_of(s):
            if not set(replica.hosts) & dead:
                src_mesh = replica
                break
        if src_mesh is None:
            raise RecoveryError(
                f"stage {s}: every checkpoint replica lost a host "
                f"(dead: {sorted(dead)}); state is unrecoverable — "
                "enable buddy replication or add spares"
            )
        array = checkpoint.arrays[s]
        task = ReshardingTask(
            array.shape,
            _flat(src_mesh),
            STATE_SPEC,
            _flat(new),
            STATE_SPEC,
            dtype=array.dtype,
            require_disjoint=False,
        )
        compiled = compile_resharding(
            task,
            CompileContext(
                strategy=strategy,
                strategy_kwargs={"faults": faults_now},
                retry_policy=retry_policy,
            ),
        )
        plan = _trim_local_deliveries(compiled.plan)
        if plan is compiled.plan:
            timing = compiled.ensure_timing()
        else:
            # Trimming rewrote the op list: the compiled plan's memoized
            # timing no longer describes what will execute, and the
            # validate pass's clean bill of health no longer applies —
            # re-prove the trimmed plan before trusting it with state.
            trimmed_report = check_plan(plan, faults=faults_now)
            if not trimmed_report.ok:
                raise RecoveryError(
                    f"stage {s}: trimmed recovery plan failed static "
                    "analysis:\n"
                    + "\n".join(d.format() for d in trimmed_report.errors)
                )
            timing = simulate_plan(plan, faults=faults_now, retry_policy=retry_policy)
        src_tensor = DistributedTensor.from_global(
            _flat(src_mesh), STATE_SPEC, array
        )
        dst_tensor = apply_plan(plan, src_tensor)
        integrity = verify_delivery(plan, timing, strict=True)
        restored = dst_tensor.to_global()
        if not np.array_equal(restored, array):
            raise IntegrityError(
                f"stage {s}: restored state differs from checkpoint "
                "despite certified delivery"
            )
        steps.append(
            ReshardStep(
                stage=s,
                src_mesh=src_mesh,
                dst_mesh=new,
                task=task,
                timing=timing,
                integrity=integrity,
                restored=restored,
            )
        )
    return RecoveryPlan(
        mode=mode,
        dead_hosts=frozenset(dead),
        used_spares=promoted,
        new_meshes=new_meshes,
        steps=steps,
    )
