"""Elastic recovery runtime: checkpoint / replan / resume.

The paper optimizes cross-mesh resharding for a *healthy* cluster; this
package reuses the exact same machinery — strategies, schedulers, the
timing and data interpreters — to survive permanent host loss
(fail-stop: kernel panic, hardware fault, spot reclaim).  The loop:

1. **Checkpoint** model state at iteration boundaries, buddy-replicated
   onto the next stage's mesh so no single host loss destroys a shard
   (:mod:`repro.recovery.checkpoint`).
2. **Replan** after a fatal :class:`~repro.sim.faults.FaultReport`:
   substitute a warm spare host (or shrink the placement onto the
   survivors), re-run strategy selection and scheduling on the new
   topology, and compile the cross-mesh resharding plans that move
   checkpointed shards from the old layout to the new one
   (:mod:`repro.recovery.replan`).
3. **Resume** from the checkpointed iteration, re-running the lost
   iterations (warmup) on the rebuilt cluster
   (:func:`repro.recovery.runtime.simulate_training_run`).

Every recovery reshard is executed on the data plane and certified by
:func:`repro.core.verify_data.verify_delivery`: each destination device
must receive every element of its new tile exactly once.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointStore,
    buddy_assignment,
    optimal_interval,
)
from .replan import RecoveryError, RecoveryPlan, ReshardStep, place_stages, replan
from .runtime import RecoveryEvent, RunReport, simulate_training_run

__all__ = [
    "CheckpointConfig",
    "Checkpoint",
    "CheckpointStore",
    "buddy_assignment",
    "optimal_interval",
    "place_stages",
    "replan",
    "RecoveryError",
    "RecoveryPlan",
    "ReshardStep",
    "simulate_training_run",
    "RunReport",
    "RecoveryEvent",
]
