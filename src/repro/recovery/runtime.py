"""The elastic training supervisor: run, crash, replan, resume.

:func:`simulate_training_run` drives a model-parallel training job
through ``n_iterations`` on the simulated cluster while a
:class:`~repro.sim.faults.FaultSchedule` injects permanent host
failures.  The loop:

* healthy iterations advance the wall clock by the pipeline-simulated
  iteration time and apply a deterministic per-iteration update to each
  stage's state array (so restored state can be checked bit-for-bit);
* at checkpoint boundaries the state is snapshotted with the cost model
  of :mod:`repro.recovery.checkpoint`;
* when a working host dies, the in-flight iteration is lost, the
  failure is detected after the health-check latency, the placement is
  rebuilt and the checkpointed state is resharded onto it
  (:func:`repro.recovery.replan.replan` — certified on the data plane),
  and training resumes from the checkpointed iteration, re-running the
  lost iterations (*warmup*) on the new topology.

The supervisor runs on the shared runtime kernel
(:class:`~repro.runtime.kernel.Kernel`): each iteration, checkpoint
write and recovery is an event continuation rather than a hand-advanced
clock, and every phase is emitted to the kernel's telemetry bus
(``iteration``/``checkpoint`` spans on the ``supervisor`` track; each
recovery is a nested span with ``detect``/``load``/``reshard``
children and a ``host-failure`` mark).  ``RunReport.telemetry`` exposes
the stream.

Everything is deterministic: same spec + schedule + seed gives a
byte-identical :class:`RunReport` (the ``state_digest`` field exists to
assert exactly that across processes).
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..compiler import default_plan_cache
from ..models.parallel import METHODS, ParallelJobSpec, run_iteration
from ..runtime.kernel import Kernel
from ..runtime.telemetry import TelemetryBus
from ..sim.faults import FaultSchedule, HostFailure, RetryPolicy
from .checkpoint import CheckpointConfig, CheckpointStore
from .replan import RecoveryError, replan

__all__ = ["RecoveryEvent", "RunReport", "simulate_training_run"]


@dataclass
class RecoveryEvent:
    """One restart: what died, and where the recovery time went.

    The four phases of the breakdown:

    * ``detect`` — failure onset to the runtime learning about it;
    * ``load`` — reading the last checkpoint back from storage;
    * ``reshard`` — moving checkpointed shards onto the new placement
      (the certified cross-mesh resharding);
    * ``warmup`` — re-running the iterations lost since the checkpoint
      on the new topology.

    ``wasted`` is the partial iteration in flight when the host died.
    """

    failure: HostFailure
    mode: str  # "substitute" | "shrink"
    promoted_spares: tuple[int, ...]
    rollback_iterations: int
    detect: float
    load: float
    reshard: float
    warmup: float
    wasted: float
    reshard_bytes: float
    certified: bool

    @property
    def recovery_time(self) -> float:
        return self.detect + self.load + self.reshard + self.warmup + self.wasted


@dataclass
class RunReport:
    """Outcome of one elastic training run."""

    name: str
    method: str
    n_iterations: int
    iterations_completed: int
    completed: bool
    total_time: float
    ideal_time: float
    checkpoint_time: float
    n_checkpoints: int
    events: list[RecoveryEvent] = field(default_factory=list)
    state_digest: str = ""
    aborted_reason: str = ""
    telemetry: Optional[TelemetryBus] = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_restarts(self) -> int:
        return len(self.events)

    @property
    def time_detect(self) -> float:
        return sum(e.detect for e in self.events)

    @property
    def time_load(self) -> float:
        return sum(e.load for e in self.events)

    @property
    def time_reshard(self) -> float:
        return sum(e.reshard for e in self.events)

    @property
    def time_warmup(self) -> float:
        return sum(e.warmup for e in self.events)

    @property
    def time_wasted(self) -> float:
        return sum(e.wasted for e in self.events)

    @property
    def recovery_time(self) -> float:
        return sum(e.recovery_time for e in self.events)

    @property
    def overhead(self) -> float:
        """Fraction of run time not spent on forward progress."""
        if self.total_time <= 0:
            return 0.0
        return (self.total_time - self.ideal_time) / self.total_time

    def __repr__(self) -> str:
        status = "ok" if self.completed else f"ABORTED ({self.aborted_reason})"
        return (
            f"RunReport({self.name}, {status}, "
            f"{self.iterations_completed}/{self.n_iterations} iters, "
            f"{self.n_restarts} restart(s), total={self.total_time:.2f}s, "
            f"overhead={self.overhead:.1%})"
        )


def _init_state(
    n_stages: int, n_elems: int, seed: int
) -> dict[int, np.ndarray]:
    return {
        s: np.random.default_rng((seed, s)).standard_normal(
            n_elems, dtype=np.float32
        )
        for s in range(n_stages)
    }


def _iteration_update(stage: int, iteration: int) -> np.float32:
    """Deterministic pure function of (stage, global iteration index):
    replaying an iteration after a rollback reproduces it exactly."""
    return np.float32((iteration + 1) * 1e-4 + (stage + 1) * 1e-6)


def _digest(state: dict[int, np.ndarray]) -> str:
    """SHA-256 over the final state arrays (stage order).

    Deliberately excludes timing: a recovered run must end in *exactly*
    the state a fault-free run reaches, because warmup replays the same
    deterministic updates from the restored checkpoint.
    """
    h = hashlib.sha256()
    for s in sorted(state):
        h.update(struct.pack("<i", s))
        h.update(state[s].tobytes())
    return h.hexdigest()


def simulate_training_run(
    spec: ParallelJobSpec,
    n_iterations: int,
    faults: Optional[FaultSchedule] = None,
    config: Optional[CheckpointConfig] = None,
    method: str = "broadcast",
    retry_policy: Optional[RetryPolicy] = None,
    max_restarts: int = 4,
    state_elems_per_stage: int = 1 << 14,
    seed: int = 0,
) -> RunReport:
    """Run ``spec`` for ``n_iterations``, surviving permanent host loss.

    Returns a :class:`RunReport`; raises :class:`RecoveryError` when a
    failure strikes with no checkpoint to recover from, and
    :class:`~repro.core.verify_data.IntegrityError` if a recovery
    reshard fails data-plane certification.  ``max_restarts`` bounds
    the number of recoveries before the run aborts (reported, not
    raised — operator intervention, not a bug).
    """
    if n_iterations < 1:
        raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; options: {sorted(METHODS)}")
    config = config if config is not None else CheckpointConfig()
    faults = faults if faults is not None else FaultSchedule()
    store = CheckpointStore(config)

    spec_cur = spec
    meshes = list(spec.stage_meshes)
    n_stages = len(meshes)
    state = _init_state(n_stages, state_elems_per_stage, seed)
    iter_time = run_iteration(spec_cur, method).iteration_time
    ideal_time = n_iterations * iter_time

    kernel = Kernel()
    bus = kernel.bus
    completed = 0
    used_spares: frozenset[int] = frozenset()
    consumed: set[HostFailure] = set()
    events: list[RecoveryEvent] = []
    result: list[RunReport] = []

    def make_report(
        done: bool, total_time: float, aborted_reason: str = ""
    ) -> RunReport:
        return RunReport(
            name=spec.name,
            method=method,
            n_iterations=n_iterations,
            iterations_completed=completed,
            completed=done,
            total_time=total_time,
            ideal_time=ideal_time,
            checkpoint_time=store.total_write_time,
            n_checkpoints=store.n_writes,
            events=events,
            state_digest=_digest(state),
            aborted_reason=aborted_reason,
            telemetry=bus,
        )

    def next_strike() -> Optional[HostFailure]:
        working = {h for m in meshes for h in m.hosts}
        live = [
            f
            for f in faults.host_failures
            if f not in consumed and f.host in working
        ]
        return min(live, key=lambda f: (f.time, f.host), default=None)

    def recover(strike: HostFailure) -> None:
        """Handle a mid-iteration host death; all state mutations happen
        now, the clock catches up via the scheduled continuation."""
        nonlocal spec_cur, meshes, iter_time, completed, used_spares, state
        t = kernel.now
        consumed.add(strike)
        bus.mark(
            "host-failure",
            track="supervisor",
            host=strike.host,
            failure_time=strike.time,
        )
        if len(events) >= max_restarts:
            result.append(
                make_report(
                    False,
                    max(t, strike.time),
                    aborted_reason=(
                        f"host {strike.host} died at t={strike.time:.2f}s "
                        f"after {max_restarts} restart(s) already spent"
                    ),
                )
            )
            return
        if store.latest is None:
            raise RecoveryError(
                f"host {strike.host} died at t={strike.time:.2f}s with "
                "no checkpoint to recover from (checkpointing disabled?)"
            )
        wasted = max(strike.time - t, 0.0)
        # The world changed: plans compiled for the pre-failure
        # topology must never be served again.  Dropping the cache
        # also bumps its epoch, which is folded into every signature.
        default_plan_cache().invalidate(
            reason=f"host {strike.host} failed at t={strike.time:.2f}s"
        )
        plan = replan(
            spec_cur,
            store.latest,
            faults,
            strike.time,
            used_spares=used_spares,
            strategy=METHODS[method].strategy,
            retry_policy=retry_policy,
        )
        load = store.read_time(store.latest)
        meshes = plan.new_meshes
        # A shrunk stage computes slower in proportion to the devices
        # it lost (weak-scaling model); substitution keeps sizes.
        profiles = [
            dataclasses.replace(
                p,
                fwd_time=p.fwd_time * k,
                bwd_x_time=p.bwd_x_time * k,
                bwd_w_time=p.bwd_w_time * k,
            )
            for p, k in (
                (
                    spec.profiles[s],
                    spec.stage_meshes[s].n_devices / meshes[s].n_devices,
                )
                for s in range(n_stages)
            )
        ]
        spec_cur = dataclasses.replace(
            spec_cur, stage_meshes=meshes, profiles=profiles
        )
        used_spares = used_spares | set(plan.used_spares)
        new_iter_time = run_iteration(spec_cur, method).iteration_time
        rollback = completed - store.latest.iteration
        state = {s: a.copy() for s, a in store.latest.arrays.items()}
        completed = store.latest.iteration
        events.append(
            RecoveryEvent(
                failure=strike,
                mode=plan.mode,
                promoted_spares=plan.used_spares,
                rollback_iterations=rollback,
                detect=config.detection_latency,
                load=load,
                reshard=plan.reshard_time,
                warmup=rollback * new_iter_time,
                wasted=wasted,
                reshard_bytes=plan.bytes_moved,
                certified=plan.certified,
            )
        )
        iter_time = new_iter_time
        # Detection may complete while we were still mid-recovery of
        # an earlier failure; never move the clock backwards.
        base = max(strike.time + config.detection_latency, t)
        resharded_at = base + load + plan.reshard_time
        # Make the new placement durable right away: until a fresh
        # checkpoint exists, the old one still references the dead
        # host and a second failure could strand every replica.
        write = store.write(completed, resharded_at, state, meshes)
        t_done = resharded_at + write
        bus.begin(
            f"recovery{len(events) - 1}",
            cat="recovery",
            track="supervisor",
            host=strike.host,
            mode=plan.mode,
        )
        bus.emit_span(
            "detect", cat="recovery.detect", track="supervisor",
            start=strike.time, end=strike.time + config.detection_latency,
        )
        bus.emit_span(
            "load", cat="recovery.load", track="supervisor",
            start=base, end=base + load,
        )
        bus.emit_span(
            "reshard", cat="recovery.reshard", track="supervisor",
            start=base + load, end=resharded_at,
            bytes_moved=plan.bytes_moved, certified=plan.certified,
        )
        bus.emit_span(
            "checkpoint", cat="checkpoint", track="supervisor",
            start=resharded_at, end=t_done, iteration=completed,
        )

        def end_recovery() -> None:
            bus.end("supervisor")
            step()

        kernel.call_at(t_done, end_recovery)

    def step() -> None:
        """One supervisor decision at the current simulated time."""
        nonlocal completed
        t = kernel.now
        if completed >= n_iterations:
            result.append(make_report(True, t))
            return
        strike = next_strike()
        iter_end = t + iter_time
        if strike is not None and strike.time < iter_end:
            recover(strike)  # the iteration in flight is lost
            return
        # ---- a healthy iteration ------------------------------------
        for s in range(n_stages):
            state[s] += _iteration_update(s, completed)
        bus.emit_span(
            f"iter{completed}", cat="iteration", track="supervisor",
            start=t, end=iter_end, iteration=completed,
        )
        completed += 1
        t_next = iter_end
        if (
            config.enabled
            and completed % config.interval == 0
            and completed < n_iterations
        ):
            write = store.write(completed, t_next, state, meshes)
            bus.emit_span(
                "checkpoint", cat="checkpoint", track="supervisor",
                start=t_next, end=t_next + write, iteration=completed,
            )
            t_next += write
        kernel.call_at(t_next, step)

    if config.enabled:
        first_write = store.write(0, 0.0, state, meshes)
        bus.emit_span(
            "checkpoint", cat="checkpoint", track="supervisor",
            start=0.0, end=first_write, iteration=0,
        )
        kernel.call_at(first_write, step)
    else:
        kernel.call_at(0.0, step)
    kernel.run()
    assert result, "supervisor ended without producing a report"
    return result[0]
