"""Incremental re-simulation: reuse unchanged schedule prefixes.

Auto-strategy scoring (:class:`~repro.compiler.passes.SelectPass`)
simulates many candidate plans that differ in a few ops, and repeated
compiles of the same resharding — benchmark loops, cache-epoch
invalidation in the serving frontend — re-simulate plans that did not
change at all.  A full simulation re-runs every unit task from time
zero even though the prefix of the schedule is identical.

This module keeps a :class:`ResimCache` of simulator **checkpoints**
taken at quiescent unit-task boundaries, keyed by a rolling content
digest of the op-schedule prefix.  :func:`resimulate` finds the deepest
cached checkpoint whose digest matches the plan's prefix, restores the
simulator there (fresh :class:`~repro.sim.network.Network`, prefix
telemetry rows, executor state), and replays only the suffix — the
result is **byte-identical** to a cold :func:`~repro.core.executor
.simulate_plan` (``tests/test_resim.py`` pins telemetry-digest
equality).

Soundness
=========

A checkpoint is only valid at a **quiescent barrier cut**: an instant
where no flows are active, no events are pending, every released task
has finished, and the finished set is exactly a prefix of
``schedule.order``.  Real schedules are not chain-serial — the
scheduler load-balances tasks across disjoint host sets precisely so
they overlap — so cuts are detected *dynamically* while simulating,
not inferred statically from the gating graph.  At such a cut the
suffix cannot perturb the prefix (max-min fair sharing couples the
rates of concurrent flows, but nothing is concurrent across the cut).

A resume additionally validates the *new* plan against the cut: every
suffix task whose gating predecessors all lie inside the prefix (an
*entry* task) must be gated on the checkpoint's last-finishing task.
That guarantees (a) no suffix flow would have started before the cut
in a cold run, and (b) the cold run releases exactly those entry tasks
in one sorted successor sweep at the cut instant — which the resume
replays verbatim, so the result is byte-identical.

Eligibility is otherwise ``faults=None`` (no timeout events, no
fault-boundary events, no retries), ``respect_schedule=True``, no
caller-supplied network, and no ungated (task id ``-1``) ops.
Anything else falls back to a cold simulation; the fallback is
counted, never wrong.

The digest chain is ``d_i = H(d_{i-1} | task_id | assignment | ops)``
seeded with the full task signature and granularity, so a prefix
digest pins everything the prefix simulation can observe (receiver
hosts, payload shapes, and the cluster all derive from the task).
Checkpoints live alongside the :class:`~repro.compiler.cache
.PlanCache` (which caches whole compiled plans; this caches partial
*simulations*).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..core.executor import PlanRunner, TimingResult
from ..core.plan import CommPlan
from ..runtime.telemetry import CounterRow, MarkRecord, SpanRow
from ..sim.faults import FaultSchedule, RetryPolicy
from ..sim.network import Network
from .cache import task_signature

__all__ = [
    "SimCheckpoint",
    "ResimStats",
    "ResimCache",
    "resimulate",
    "schedule_order",
    "prefix_digests",
    "default_resim_cache",
    "reset_default_resim_cache",
]


@dataclass(frozen=True)
class SimCheckpoint:
    """Frozen simulator + executor state at one quiescent barrier cut.

    ``task_index`` is the schedule-order position of the deepest
    finished task (the finished set is ``order[:task_index + 1]``);
    ``last_task`` is the task whose completion produced the cut —
    resume validation requires every entry task of the suffix to be
    gated on it.  Every container is an immutable copy; a restore
    materializes fresh mutable state from it, so one checkpoint can
    seed any number of resumes.
    """

    digest: str
    task_index: int
    last_task: int
    now: float
    last_update: float
    next_flow_id: int
    span_rows: tuple[SpanRow, ...]
    counter_rows: tuple[CounterRow, ...]
    marks: tuple[MarkRecord, ...]
    #: final value of every counter/gauge series: (name, track, is_counter, value)
    series_values: tuple[tuple[str, str, bool, float], ...]
    bytes_cross: float
    bytes_intra: float
    op_finish: tuple[tuple[int, float], ...]
    task_finish: tuple[tuple[int, float], ...]
    op_launch: tuple[tuple[int, float], ...]
    task_release: tuple[tuple[int, float], ...]
    op_done: frozenset[int]
    launched: frozenset[int]
    released: frozenset[int]
    #: buffer-accounting state (see :mod:`repro.core.buffers`); live is
    #: float residue only at a quiescent cut, but it must round-trip so
    #: resumed peaks match a cold run's bit for bit
    host_live: tuple[tuple[int, float], ...] = ()
    host_peak: tuple[tuple[int, float], ...] = ()


@dataclass(frozen=True)
class ResimStats:
    """A snapshot of one resim cache's counters."""

    requests: int
    hits: int
    misses: int
    ineligible: int
    tasks_skipped: int
    tasks_replayed: int
    checkpoints_stored: int
    evictions: int
    size: int

    @property
    def task_reuse_rate(self) -> float:
        """Fraction of unit-task simulations served from checkpoints."""
        total = self.tasks_skipped + self.tasks_replayed
        return self.tasks_skipped / total if total else 0.0


class ResimCache:
    """LRU store of :class:`SimCheckpoint`\\ s keyed by prefix digest."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, SimCheckpoint]" = OrderedDict()
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.ineligible = 0
        self.tasks_skipped = 0
        self.tasks_replayed = 0
        self.checkpoints_stored = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def lookup(self, digest: str) -> Optional[SimCheckpoint]:
        found = self._entries.get(digest)
        if found is not None:
            self._entries.move_to_end(digest)
        return found

    def store(self, checkpoint: SimCheckpoint) -> None:
        entries = self._entries
        if checkpoint.digest in entries:
            entries.move_to_end(checkpoint.digest)
            return
        if len(entries) >= self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1
        entries[checkpoint.digest] = checkpoint
        self.checkpoints_stored += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> ResimStats:
        return ResimStats(
            requests=self.requests,
            hits=self.hits,
            misses=self.misses,
            ineligible=self.ineligible,
            tasks_skipped=self.tasks_skipped,
            tasks_replayed=self.tasks_replayed,
            checkpoints_stored=self.checkpoints_stored,
            evictions=self.evictions,
            size=len(self),
        )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ResimCache(requests={s.requests}, hits={s.hits}, "
            f"misses={s.misses}, ineligible={s.ineligible}, "
            f"task_reuse={s.task_reuse_rate:.1%}, size={s.size})"
        )


# ----------------------------------------------------------------------
# Eligibility + digests
# ----------------------------------------------------------------------
def schedule_order(plan: CommPlan) -> Optional[list[int]]:
    """The schedule order restricted to tasks that emit ops, or None.

    Returns None when the plan cannot take checkpoints at all: no
    schedule (ungated baseline), schedule-free (``-1``) ops which
    launch at time zero regardless of gating, or ops whose task is
    missing from the schedule (gating undefined).  This is only the
    static pre-gate — whether any boundary is actually a quiescent cut
    is discovered dynamically while simulating.
    """
    schedule = plan.schedule
    if schedule is None:
        return None
    task_ops = plan.ops_by_task()
    if -1 in task_ops or not task_ops:
        return None
    order = [tid for tid in schedule.order if tid in task_ops]
    if len(order) != len(task_ops):
        return None  # ops outside the schedule: gating is undefined
    return order


def prefix_digests(plan: CommPlan, order: list[int]) -> list[str]:
    """Rolling SHA-256 digests of the op-schedule prefix, one per task.

    ``digests[i]`` pins everything the simulation of tasks
    ``order[:i+1]`` can depend on: the full task signature (shapes,
    sharding specs, meshes, cluster — receiver hosts all derive from
    it), the granularity, and each task's id, host assignment, and
    exact ops (reprs include op ids, deps, payloads, and checksums).
    """
    assert plan.schedule is not None
    task_ops = plan.ops_by_task()
    h = hashlib.sha256()
    h.update(
        repr(
            (
                task_signature(plan.task),
                plan.granularity,
                "resim-v2",
            )
        ).encode()
    )
    out: list[str] = []
    for tid in order:
        h.update(repr((tid, plan.schedule.assignment[tid])).encode())
        for op in task_ops[tid]:
            h.update(repr(op).encode())
        out.append(h.hexdigest())
    return out


# ----------------------------------------------------------------------
# Capture / restore
# ----------------------------------------------------------------------
def _capture(
    runner: PlanRunner, digest: str, task_index: int, last_task: int
) -> SimCheckpoint:
    net = runner.net
    bus = net.bus
    return SimCheckpoint(
        digest=digest,
        task_index=task_index,
        last_task=last_task,
        now=net.loop.now,
        last_update=net._last_update,
        next_flow_id=net._next_id,
        span_rows=tuple(bus._span_rows),
        counter_rows=tuple(bus._counter_rows),
        marks=tuple(bus._marks),
        series_values=tuple(
            (name, track, is_counter, series.value)
            for (name, track, is_counter), series in bus._series.items()
        ),
        bytes_cross=net.bytes_cross_host,
        bytes_intra=net.bytes_intra_host,
        op_finish=tuple(runner.op_finish.items()),
        task_finish=tuple(runner.task_finish.items()),
        op_launch=tuple(runner.op_launch.items()),
        task_release=tuple(runner.task_release.items()),
        op_done=frozenset(runner.op_done),
        launched=frozenset(runner.launched),
        released=frozenset(runner.released),
        host_live=tuple(sorted(runner.host_live.items())),
        host_peak=tuple(sorted(runner.host_peak.items())),
    )


def _restore(runner: PlanRunner, ckpt: SimCheckpoint) -> None:
    """Preload ``runner`` (fresh, never run) with the checkpoint state."""
    net = runner.net
    net.loop.now = ckpt.now
    net._last_update = ckpt.last_update
    net._next_id = ckpt.next_flow_id
    bus = net.bus
    bus._span_rows = list(ckpt.span_rows)
    bus._counter_rows = list(ckpt.counter_rows)
    bus._marks = list(ckpt.marks)
    for name, track, is_counter, value in ckpt.series_values:
        series = bus.counter(name, track) if is_counter else bus.gauge(name, track)
        series.value = value
    net.bytes_cross_host = ckpt.bytes_cross
    net.bytes_intra_host = ckpt.bytes_intra
    runner.op_finish.update(ckpt.op_finish)
    runner.task_finish.update(ckpt.task_finish)
    runner.op_launch.update(ckpt.op_launch)
    runner.task_release.update(ckpt.task_release)
    runner.op_done.update(ckpt.op_done)
    runner.launched.update(ckpt.launched)
    runner.released.update(ckpt.released)
    runner.host_live.update(ckpt.host_live)
    runner.host_peak.update(ckpt.host_peak)
    for tid, _finish in ckpt.task_finish:
        runner.tasks_pending_ops[tid] = 0


def _at_barrier_cut(runner: PlanRunner) -> bool:
    """True when the runner sits at a quiescent barrier cut.

    No active flows, no live events, nothing failed, every launched op
    completed (a tied task finishing in the same event whose callback
    has not run yet would leave a drained-but-unfinished op behind),
    and every released task finished.  Whether the finished set is a
    schedule-order prefix is checked by the caller.
    """
    net = runner.net
    return (
        not net._active
        and net.loop.pending == 0
        and not runner.failed_ops
        and runner.launched == runner.op_done
        and runner.released == set(runner.task_finish)
    )


def _resume_entries(
    runner: PlanRunner, order: list[int], ckpt: SimCheckpoint
) -> Optional[list[int]]:
    """Suffix tasks to release at the cut, or None if the cut is invalid.

    An *entry* task has every gating predecessor inside the restored
    prefix.  For the resume to be byte-identical to a cold run, each
    one must be gated on the checkpoint's last-finishing task: then a
    cold run would release exactly these tasks, in one sorted successor
    sweep, at exactly the cut instant — any entry task not gated on
    ``last_task`` would have started *before* the cut and overlapped
    the prefix, so the checkpoint does not apply to this plan.
    """
    k = ckpt.task_index
    prefix = set(order[: k + 1])
    entries: list[int] = []
    for tid in order[k + 1 :]:
        preds = runner.task_preds.get(tid, set())
        if preds <= prefix:
            if ckpt.last_task not in preds:
                return None
            entries.append(tid)
    if not entries:
        return None  # nothing can release at the cut: would deadlock
    return sorted(entries)


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------
def resimulate(
    plan: CommPlan,
    cache: Optional[ResimCache] = None,
    network: Optional[Network] = None,
    respect_schedule: bool = True,
    faults: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> TimingResult:
    """Simulate ``plan``, reusing any cached matching schedule prefix.

    A drop-in replacement for :func:`~repro.core.executor.simulate_plan`
    that consults ``cache`` (the process default when None).  Ineligible
    calls — fault injection, caller-supplied networks, unscheduled
    plans — fall back to a cold simulation and are counted in the
    cache's ``ineligible`` stat.  Results are byte-identical to the
    cold path either way.
    """
    if cache is None:
        cache = default_resim_cache()
    # retry_policy does not gate eligibility: retries only engage under
    # a fault schedule, so with faults=None the policy cannot influence
    # the simulation (it is still threaded through for parity).
    order = (
        schedule_order(plan)
        if faults is None and network is None and respect_schedule
        else None
    )
    if order is None or len(order) < 2:
        cache.ineligible += 1
        return PlanRunner(
            plan,
            network=network,
            respect_schedule=respect_schedule,
            faults=faults,
            retry_policy=retry_policy,
        ).run()

    cache.requests += 1
    digests = prefix_digests(plan, order)
    n = len(order)

    runner_box: list[PlanRunner] = []

    def on_task_done(tid: int) -> None:
        runner = runner_box[0]
        done = len(runner.task_finish)
        # The boundary after the last task seeds nothing (a full-plan
        # match is the PlanCache's job).
        if done >= n:
            return
        k = done - 1
        if digests[k] in cache:
            cache.lookup(digests[k])  # refresh recency
            return
        if not _at_barrier_cut(runner):
            return  # concurrent tasks still in flight: not a cut
        if set(runner.task_finish) != set(order[:done]):
            return  # finished out of schedule order: digest chain n/a
        cache.store(_capture(runner, digests[k], k, tid))

    runner = PlanRunner(plan, retry_policy=retry_policy, on_task_done=on_task_done)
    runner_box.append(runner)

    # Deepest cached cut, strictly before the last task, that is valid
    # for THIS plan's gating graph (a shallower cut may validate where
    # a deeper one does not).
    entries: Optional[list[int]] = None
    ckpt: Optional[SimCheckpoint] = None
    for i in range(n - 2, -1, -1):
        found = cache.lookup(digests[i])
        if found is not None:
            entries = _resume_entries(runner, order, found)
            if entries is not None:
                ckpt = found
                break

    if ckpt is not None and entries is not None:
        cache.hits += 1
        cache.tasks_skipped += ckpt.task_index + 1
        cache.tasks_replayed += n - (ckpt.task_index + 1)
        _restore(runner, ckpt)
        # Release the cut's entry tasks exactly as the cold run did: one
        # ascending sweep at the restored instant (run()'s own release
        # loop then no-ops for them).
        for tid in entries:
            runner.maybe_release(tid)
    else:
        cache.misses += 1
        cache.tasks_replayed += n
    return runner.run()


_DEFAULT_RESIM: Optional[ResimCache] = None


def default_resim_cache() -> ResimCache:
    """The process-wide checkpoint cache (SelectPass's default)."""
    global _DEFAULT_RESIM
    if _DEFAULT_RESIM is None:
        _DEFAULT_RESIM = ResimCache()
    return _DEFAULT_RESIM


def reset_default_resim_cache() -> ResimCache:
    """Replace the process-wide resim cache (tests, benchmarks)."""
    global _DEFAULT_RESIM
    _DEFAULT_RESIM = ResimCache()
    return _DEFAULT_RESIM
