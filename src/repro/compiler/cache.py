"""Content-addressed cache for compiled resharding plans.

Every micro-batch, every auto-strategy scoring call, and every recovery
replan resolves the *same* handful of reshardings; recompiling (and
re-simulating) them from scratch each time is pure waste.  The cache
keys a :class:`~repro.compiler.pipeline.CompiledPlan` by a canonical
**content signature** of everything the compile pipeline's output
depends on:

* the tensor: shape and dtype;
* the layouts: source/destination sharding specs and mesh device grids;
* the topology: every :class:`~repro.sim.cluster.ClusterSpec` field
  (bandwidths, latencies, per-host overrides, spares);
* the strategy: its name plus every plan-shaping option
  (:meth:`~repro.strategies.base.CommStrategy.cache_key`);
* the fault scenario: a digest of the :class:`~repro.sim.faults
  .FaultSchedule` and :class:`~repro.sim.faults.RetryPolicy`;
* the cache **epoch** — a counter bumped by explicit invalidation on
  fault events (e.g. a permanent :class:`~repro.sim.faults.HostFailure`
  detected by the recovery runtime), so plans compiled for the
  pre-failure world can never be served afterwards even if a caller
  forgets to thread the updated fault schedule through.

Two tasks on *different* :class:`~repro.sim.cluster.Cluster` objects
with identical content hash identically — the cache is content-
addressed, not identity-addressed.  A strategy without a cache key
(custom subclasses) makes the compile uncacheable rather than wrong.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim.cluster import ClusterSpec
from ..sim.faults import FaultSchedule, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import ReshardingTask
    from .pipeline import CompiledPlan

__all__ = [
    "task_signature",
    "plan_signature",
    "CacheStats",
    "ShardStats",
    "PlanCache",
    "default_plan_cache",
    "reset_default_plan_cache",
]


def _cluster_key(spec: ClusterSpec) -> tuple[object, ...]:
    key: tuple[object, ...] = (
        spec.n_hosts,
        spec.devices_per_host,
        spec.inter_host_bandwidth,
        spec.intra_host_bandwidth,
        spec.inter_host_latency,
        spec.intra_host_latency,
        tuple(sorted(spec.host_bandwidth_overrides)),
        spec.n_spare_hosts,
        # frozen dataclasses: repr is canonical, so domain membership
        # changes invalidate cached plans like any other spec change
        repr(spec.failure_domains),
        # the wiring itself: a fat-tree and a torus at identical scalar
        # speeds compile to different plans (multicast eligibility,
        # multi-hop pricing), as do per-pair link overrides
        repr(spec.topology),
        repr(spec.link_overrides),
    )
    # Appended only when set so every signature of a budget-free spec is
    # byte-identical to what it hashed to before budgets existed.
    if spec.memory_budget is not None:
        key += (("memory_budget", spec.memory_budget),)
    return key


def _faults_key(faults: Optional[FaultSchedule]) -> str:
    # FaultSchedule is a frozen dataclass of frozen dataclasses and
    # numbers: its repr is canonical and deterministic.
    return "none" if faults is None else repr(faults)


def _retry_key(policy: Optional[RetryPolicy]) -> str:
    return "none" if policy is None else repr(policy)


def task_signature(task: "ReshardingTask") -> tuple[object, ...]:
    """Canonical content key of one resharding task (no strategy/faults)."""
    return (
        task.shape,
        task.dtype.str,
        str(task.src_spec),
        str(task.dst_spec),
        task.src_mesh.grid,
        task.dst_mesh.grid,
        _cluster_key(task.cluster.spec),
    )


def plan_signature(
    task: "ReshardingTask",
    strategy_key: tuple[object, ...],
    faults: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    epoch: int = 0,
) -> str:
    """SHA-256 over the canonical signature of one compile request."""
    h = hashlib.sha256()
    h.update(
        repr(
            (
                task_signature(task),
                strategy_key,
                _faults_key(faults),
                _retry_key(retry_policy),
                epoch,
            )
        ).encode()
    )
    return h.hexdigest()


@dataclass(frozen=True)
class ShardStats:
    """A snapshot of one cache shard's counters."""

    shard: int
    hits: int
    misses: int
    evictions: int
    size: int


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    requests: int
    hits: int
    misses: int
    size: int
    epoch: int
    n_invalidations: int
    evictions: int = 0
    stale_stores: int = 0
    shards: tuple[ShardStats, ...] = ()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def compile_call_reduction(self) -> float:
        """Fraction of compile requests served without compiling."""
        return self.hit_rate

    def __repr__(self) -> str:
        return (
            f"CacheStats(requests={self.requests}, hits={self.hits}, "
            f"misses={self.misses}, hit_rate={self.hit_rate:.1%}, "
            f"size={self.size}, evictions={self.evictions}, "
            f"epoch={self.epoch})"
        )


class _Shard:
    """One LRU shard: an ordered dict in recency order plus counters."""

    __slots__ = ("entries", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self.entries: OrderedDict[str, "CompiledPlan"] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class PlanCache:
    """Content-addressed store of :class:`CompiledPlan` objects.

    Entries live in ``n_shards`` independent LRU shards (the shard is
    picked by signature prefix, so the content hash doubles as the shard
    router); a hit refreshes recency, and inserts beyond a shard's
    capacity evict that shard's least-recently-used entry.  Per-shard
    hit/miss/eviction counters are exposed through :meth:`stats`.

    :meth:`invalidate` drops everything *and* bumps the epoch that is
    folded into every signature — explicit invalidation on fault events.
    It is safe to call concurrently with in-flight compiles: a compile
    that computed its signature (and captured the epoch) before the bump
    may still call :meth:`store`, but the write is detected as stale and
    dropped (counted in ``stale_stores``) rather than resurrecting a
    pre-invalidation plan — the epoch bump is never lost.
    """

    def __init__(self, max_entries: int = 1024, n_shards: int = 1) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.max_entries = max_entries
        self.n_shards = min(n_shards, max_entries)
        #: per-shard capacity: ceil so the total is >= max_entries
        self.shard_capacity = -(-max_entries // self.n_shards)
        self._shards = [_Shard() for _ in range(self.n_shards)]
        self.epoch = 0
        self.n_invalidations = 0
        self.stale_stores = 0
        self.last_invalidation_reason = ""

    def _shard_of(self, signature: str) -> _Shard:
        # Signatures are SHA-256 hex: the leading 8 hex digits are a
        # uniform 32-bit value, ideal as a shard router.
        return self._shards[int(signature[:8], 16) % self.n_shards]

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def __contains__(self, signature: str) -> bool:
        return signature in self._shard_of(signature).entries

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._shards)

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def lookup(self, signature: str) -> "Optional[CompiledPlan]":
        shard = self._shard_of(signature)
        found = shard.entries.get(signature)
        if found is None:
            shard.misses += 1
        else:
            shard.hits += 1
            shard.entries.move_to_end(signature)
        return found

    def store(
        self,
        signature: str,
        compiled: "CompiledPlan",
        epoch: Optional[int] = None,
    ) -> bool:
        """Insert ``compiled`` under ``signature``; returns True if stored.

        ``epoch`` is the cache epoch captured when the signature was
        computed.  A store whose epoch no longer matches (an
        :meth:`invalidate` ran while the compile was in flight) is
        dropped so stale plans cannot leak into the new epoch.
        """
        if epoch is not None and epoch != self.epoch:
            self.stale_stores += 1
            return False
        shard = self._shard_of(signature)
        entries = shard.entries
        if signature in entries:
            entries.move_to_end(signature)
        elif len(entries) >= self.shard_capacity:
            entries.popitem(last=False)
            shard.evictions += 1
        entries[signature] = compiled
        return True

    def invalidate(self, reason: str = "") -> None:
        """Drop every entry and open a new epoch (fault-event hook)."""
        # Bump the epoch *before* clearing: any in-flight store that
        # captured the old epoch is already stale the instant callers
        # can observe the invalidation.
        self.epoch += 1
        for shard in self._shards:
            shard.entries.clear()
        self.n_invalidations += 1
        self.last_invalidation_reason = reason

    def reset_stats(self) -> None:
        for shard in self._shards:
            shard.hits = 0
            shard.misses = 0
            shard.evictions = 0
        self.stale_stores = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            requests=self.requests,
            hits=self.hits,
            misses=self.misses,
            size=len(self),
            epoch=self.epoch,
            n_invalidations=self.n_invalidations,
            evictions=self.evictions,
            stale_stores=self.stale_stores,
            shards=tuple(
                ShardStats(
                    shard=i,
                    hits=s.hits,
                    misses=s.misses,
                    evictions=s.evictions,
                    size=len(s.entries),
                )
                for i, s in enumerate(self._shards)
            ),
        )

    def __repr__(self) -> str:
        return f"PlanCache({self.stats()!r})"


_DEFAULT_CACHE: Optional[PlanCache] = None


def default_plan_cache() -> PlanCache:
    """The process-wide cache used when a context names no other."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = PlanCache()
    return _DEFAULT_CACHE


def reset_default_plan_cache() -> PlanCache:
    """Replace the process-wide cache with a fresh one (tests, benches)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = PlanCache()
    return _DEFAULT_CACHE
