"""Content-addressed cache for compiled resharding plans.

Every micro-batch, every auto-strategy scoring call, and every recovery
replan resolves the *same* handful of reshardings; recompiling (and
re-simulating) them from scratch each time is pure waste.  The cache
keys a :class:`~repro.compiler.pipeline.CompiledPlan` by a canonical
**content signature** of everything the compile pipeline's output
depends on:

* the tensor: shape and dtype;
* the layouts: source/destination sharding specs and mesh device grids;
* the topology: every :class:`~repro.sim.cluster.ClusterSpec` field
  (bandwidths, latencies, per-host overrides, spares);
* the strategy: its name plus every plan-shaping option
  (:meth:`~repro.strategies.base.CommStrategy.cache_key`);
* the fault scenario: a digest of the :class:`~repro.sim.faults
  .FaultSchedule` and :class:`~repro.sim.faults.RetryPolicy`;
* the cache **epoch** — a counter bumped by explicit invalidation on
  fault events (e.g. a permanent :class:`~repro.sim.faults.HostFailure`
  detected by the recovery runtime), so plans compiled for the
  pre-failure world can never be served afterwards even if a caller
  forgets to thread the updated fault schedule through.

Two tasks on *different* :class:`~repro.sim.cluster.Cluster` objects
with identical content hash identically — the cache is content-
addressed, not identity-addressed.  A strategy without a cache key
(custom subclasses) makes the compile uncacheable rather than wrong.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim.cluster import ClusterSpec
from ..sim.faults import FaultSchedule, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import ReshardingTask
    from .pipeline import CompiledPlan

__all__ = [
    "task_signature",
    "plan_signature",
    "CacheStats",
    "PlanCache",
    "default_plan_cache",
    "reset_default_plan_cache",
]


def _cluster_key(spec: ClusterSpec) -> tuple[object, ...]:
    return (
        spec.n_hosts,
        spec.devices_per_host,
        spec.inter_host_bandwidth,
        spec.intra_host_bandwidth,
        spec.inter_host_latency,
        spec.intra_host_latency,
        tuple(sorted(spec.host_bandwidth_overrides)),
        spec.n_spare_hosts,
    )


def _faults_key(faults: Optional[FaultSchedule]) -> str:
    # FaultSchedule is a frozen dataclass of frozen dataclasses and
    # numbers: its repr is canonical and deterministic.
    return "none" if faults is None else repr(faults)


def _retry_key(policy: Optional[RetryPolicy]) -> str:
    return "none" if policy is None else repr(policy)


def task_signature(task: "ReshardingTask") -> tuple[object, ...]:
    """Canonical content key of one resharding task (no strategy/faults)."""
    return (
        task.shape,
        task.dtype.str,
        str(task.src_spec),
        str(task.dst_spec),
        task.src_mesh.grid,
        task.dst_mesh.grid,
        _cluster_key(task.cluster.spec),
    )


def plan_signature(
    task: "ReshardingTask",
    strategy_key: tuple[object, ...],
    faults: Optional[FaultSchedule] = None,
    retry_policy: Optional[RetryPolicy] = None,
    epoch: int = 0,
) -> str:
    """SHA-256 over the canonical signature of one compile request."""
    h = hashlib.sha256()
    h.update(
        repr(
            (
                task_signature(task),
                strategy_key,
                _faults_key(faults),
                _retry_key(retry_policy),
                epoch,
            )
        ).encode()
    )
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    requests: int
    hits: int
    misses: int
    size: int
    epoch: int
    n_invalidations: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def compile_call_reduction(self) -> float:
        """Fraction of compile requests served without compiling."""
        return self.hit_rate

    def __repr__(self) -> str:
        return (
            f"CacheStats(requests={self.requests}, hits={self.hits}, "
            f"misses={self.misses}, hit_rate={self.hit_rate:.1%}, "
            f"size={self.size}, epoch={self.epoch})"
        )


class PlanCache:
    """Content-addressed store of :class:`CompiledPlan` objects.

    Entries are evicted FIFO beyond ``max_entries`` (compiles are cheap
    enough that precision eviction is not worth the bookkeeping).
    :meth:`invalidate` drops everything *and* bumps the epoch that is
    folded into every signature — explicit invalidation on fault events.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: dict[str, "CompiledPlan"] = {}
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.n_invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def lookup(self, signature: str) -> "Optional[CompiledPlan]":
        found = self._entries.get(signature)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def store(self, signature: str, compiled: "CompiledPlan") -> None:
        if signature not in self._entries and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[signature] = compiled

    def invalidate(self, reason: str = "") -> None:
        """Drop every entry and open a new epoch (fault-event hook)."""
        self._entries.clear()
        self.epoch += 1
        self.n_invalidations += 1
        self.last_invalidation_reason = reason

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            requests=self.requests,
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            epoch=self.epoch,
            n_invalidations=self.n_invalidations,
        )

    def __repr__(self) -> str:
        return f"PlanCache({self.stats()!r})"


_DEFAULT_CACHE: Optional[PlanCache] = None


def default_plan_cache() -> PlanCache:
    """The process-wide cache used when a context names no other."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = PlanCache()
    return _DEFAULT_CACHE


def reset_default_plan_cache() -> PlanCache:
    """Replace the process-wide cache with a fresh one (tests, benches)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = PlanCache()
    return _DEFAULT_CACHE
