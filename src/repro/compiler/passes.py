"""The compile passes: lower -> select -> schedule -> fault_rewrite ->
emit -> validate.

Each pass is a small object with a ``name`` and a ``run(state, ctx)``
method mutating a shared :class:`PlanState`.  The decomposition mirrors
how the paper treats cross-mesh resharding as a compilation problem
(§2.2-§3.2) and how array-redistribution compilers structure the same
work as rewriting passes over an IR:

``lower``
    decompose the resharding into unit communication tasks at the
    strategy's granularity (Figure 2's decomposition);
``select``
    choose the communication strategy; for :class:`~repro.strategies
    .auto.AutoStrategy` this runs the scoring loop — each candidate is
    compiled through the *same* downstream passes and simulated once,
    and the winner's :class:`~repro.core.executor.TimingResult` is kept
    so callers never re-simulate it;
``schedule``
    build the host-level load-balancing problem (Eq. 1-3, with
    degraded-NIC bandwidth discounts under a fault schedule) and run
    the strategy's scheduling algorithm — previously embedded in each
    strategy's ``plan()``;
``fault_rewrite``
    re-root unit tasks whose assigned sender host is down at plan time
    onto the surviving replica host with the best effective bandwidth,
    recording a :class:`~repro.core.plan.FallbackRecord` per rewrite —
    previously buried in ``BroadcastStrategy._reroot``;
``emit``
    the strategy emits concrete :class:`~repro.core.plan.CommOp`\\ s
    following the (possibly rewritten) schedule, with greedy
    load-balanced sender-device selection;
``validate``
    optionally run the static analyzer (:func:`repro.analysis.check_plan`)
    over the emitted plan — coverage, sender authority, write races,
    schedule consistency, deadlock — aborting on any ERROR diagnostic;
    the execution-aware counterpart
    (:func:`repro.core.verify_data.verify_delivery`) is exposed as
    :meth:`CompiledPlan.certify` since it needs a timing outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Protocol

from ..core.executor import TimingResult, simulate_plan
from ..core.plan import CommPlan, FallbackRecord, slice_checksum
from ..core.task import ReshardingTask, UnitCommTask
from ..core.validate import PlanValidationError
from ..scheduling import Schedule, SchedulingProblem
from ..sim.faults import FaultSchedule
from ..strategies.base import CommStrategy, LoadTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.diagnostics import AnalysisReport
    from .pipeline import CompileContext

__all__ = [
    "CompilerPass",
    "PlanState",
    "LowerPass",
    "SelectPass",
    "SchedulePass",
    "FaultRewritePass",
    "EmitPass",
    "ValidatePass",
    "DEFAULT_PASSES",
    "reroot_schedule",
]


class CompilerPass(Protocol):
    """One stage of the plan-compiler pipeline (structural type)."""

    name: str

    def run(self, state: "PlanState", ctx: "CompileContext") -> str:
        """Mutate ``state``; return a one-line detail for diagnostics."""
        ...


@dataclass
class PlanState:
    """Mutable state threaded through the pass pipeline."""

    task: ReshardingTask
    strategy: CommStrategy
    unit_tasks: list[UnitCommTask] = field(default_factory=list)
    problem: Optional[SchedulingProblem] = None
    schedule: Optional[Schedule] = None
    fallbacks: list[FallbackRecord] = field(default_factory=list)
    plan: Optional[CommPlan] = None
    #: timing attached by the select pass when it scored the winner
    timing: Optional[TimingResult] = None
    #: (strategy name, simulated latency) pairs from the select pass
    scores: list[tuple[str, float]] = field(default_factory=list)
    #: structured diagnostics attached by the validate pass
    analysis: Optional["AnalysisReport"] = None

    @property
    def n_ops(self) -> int:
        return 0 if self.plan is None else len(self.plan.ops)


def reroot_schedule(
    task: ReshardingTask,
    unit_tasks: list[UnitCommTask],
    schedule: Schedule,
    faults: FaultSchedule,
    fallbacks: list[FallbackRecord],
) -> int:
    """Re-root scheduled sender hosts that are down at plan time.

    The scheduler may assign a sender host whose NIC is flapped down (or
    permanently dead); rather than launching a doomed broadcast and
    relying on retries, reassign the unit task to the surviving replica
    host with the best effective bandwidth and record the fallback.
    When *every* replica host is down the original assignment is kept —
    the runtime retry machinery is then the only hope.  Returns the
    number of rewrites.

    Re-rooting is **failure-domain-aware**: a survivor outside every
    failure domain of the downed host is preferred over an in-domain one
    even at worse bandwidth — the domain that took the sender down
    (rack PDU, ToR switch) is the single most likely thing to strike
    again, so landing the re-root inside it would re-expose the plan to
    the exact fault it is escaping (analyzer diagnostic F001 proves this
    property statically).  In-domain survivors are used only when no
    out-of-domain replica exists.
    """
    spec = task.cluster.spec
    n = 0
    for ut in unit_tasks:
        if not ut.receivers:
            continue
        host = schedule.assignment[ut.task_id]
        if not faults.host_down(host, 0.0):
            continue
        survivors = [
            h for h in sorted(task.sender_hosts(ut)) if not faults.host_down(h, 0.0)
        ]
        if not survivors:
            continue
        outside = [h for h in survivors if not spec.shares_domain(host, h)]
        pool = outside or survivors
        best = max(pool, key=lambda h: (faults.mean_nic_factor(h), -h))
        fallbacks.append(
            FallbackRecord(
                unit_task_id=ut.task_id,
                from_host=host,
                to_host=best,
                reason="sender-host-down",
            )
        )
        schedule.assignment[ut.task_id] = best
        n += 1
    return n


class LowerPass:
    """Decompose the resharding into unit communication tasks."""

    name = "lower"

    def run(self, state: PlanState, ctx: "CompileContext") -> str:
        state.unit_tasks = state.task.unit_tasks(state.strategy.granularity)
        return (
            f"{len(state.unit_tasks)} unit task(s) at "
            f"{state.strategy.granularity!r} granularity"
        )


class SelectPass:
    """Choose the strategy; score candidates for the auto strategy.

    Every candidate is compiled through the same downstream passes
    (schedule -> fault_rewrite -> emit) and simulated once on the
    context's (possibly lossy) network.  Plans that go fatal under the
    fault scenario are only chosen when no candidate survives.  The
    winner's plan *and* its scored timing are kept on the state, so the
    second simulation the old ``AutoStrategy`` forced on callers is
    gone.
    """

    name = "select"

    def run(self, state: PlanState, ctx: "CompileContext") -> str:
        from ..strategies.auto import AutoStrategy

        strategy = state.strategy
        if not isinstance(strategy, AutoStrategy):
            return f"fixed strategy {strategy.name!r}"

        from .budget import charge_pass
        from .resim import resimulate

        faults = ctx.effective_faults(strategy)
        retry = ctx.effective_retry_policy(strategy)
        resim_cache = ctx.resolved_resim_cache()
        memory_budget = ctx.effective_memory_budget(state.task)
        if memory_budget is not None:
            # Lazy for the same circularity reason as ValidatePass.
            from ..analysis.memory_analysis import static_host_bounds
        sub_passes = [LowerPass(), SchedulePass(), FaultRewritePass(), EmitPass()]
        best: Optional[tuple[bool, bool, float, PlanState]] = None
        state.scores = []
        skipped: list[str] = []
        mem_peaks: dict[str, float] = {}
        for cand in strategy.candidates:
            if not cand.supports(state.task):
                # e.g. switch multicast on a switchless torus: scoring a
                # plan the fabric cannot execute would be meaningless.
                skipped.append(cand.name)
                state.scores.append((cand.name, float("inf")))
                continue
            sub = PlanState(task=state.task, strategy=cand)
            for p in sub_passes:
                detail = p.run(sub, ctx)
                charge_pass(ctx.budget, p.name, sub, detail)
            if faults is None and resim_cache is not None:
                # Fault-free scoring: candidates sharing a schedule
                # prefix resume from the cached simulator checkpoint at
                # the divergence point (byte-identical to a cold run).
                result = resimulate(
                    sub.plan, cache=resim_cache, retry_policy=retry
                )
            else:
                result = simulate_plan(sub.plan, faults=faults, retry_policy=retry)
            if ctx.budget is not None:
                # simulating a candidate costs roughly its op count
                ctx.budget.charge(max(1, sub.n_ops) * 8, "select")
            fatal = result.fault_report is not None and result.fault_report.fatal
            infeasible = False
            if memory_budget is not None and sub.plan is not None:
                peak = static_host_bounds(
                    sub.plan, unit_tasks=sub.unit_tasks
                ).peak
                mem_peaks[cand.name] = peak
                infeasible = peak > memory_budget
            state.scores.append((cand.name, result.total_time))
            if best is None or (infeasible, fatal, result.total_time) < best[:3]:
                sub.timing = result
                best = (infeasible, fatal, result.total_time, sub)
        if best is None:
            raise ValueError(
                "no auto candidate supports this task on topology "
                f"{state.task.cluster.topo.topology.name!r} "
                f"(skipped: {skipped})"
            )
        if best[0]:
            # Even the lightest candidate busts the budget: the task is
            # memory-infeasible as posed, not merely slow.
            detail = ", ".join(
                f"{name}={peak:.0f}B" for name, peak in sorted(mem_peaks.items())
            )
            raise PlanValidationError(
                f"M003 error: memory budget infeasible — every candidate "
                f"strategy's static peak-buffer bound exceeds memory_budget "
                f"{memory_budget:.0f} B ({detail})"
            )
        winner = best[3]
        state.unit_tasks = winner.unit_tasks
        state.problem = winner.problem
        state.schedule = winner.schedule
        state.fallbacks = winner.fallbacks
        state.plan = winner.plan
        state.timing = winner.timing
        strategy.last_scores = list(state.scores)
        # Record the scoring decision on the winner's telemetry stream,
        # so a trace of the kept timing also explains *why* this plan:
        # one mark per candidate plus the verdict.
        if winner.timing is not None:
            bus = winner.timing.telemetry
            for name, latency in state.scores:
                bus.mark("select.candidate", track="compiler",
                         strategy=name, latency=latency)
            bus.mark("select.winner", track="compiler",
                     strategy=winner.strategy.name, latency=best[2])
        return "scored " + ", ".join(
            f"{n}=skipped" if n in skipped else f"{n}={t:.4g}s"
            for n, t in state.scores
        )


class SchedulePass:
    """Load-balance and order the unit tasks (paper §3.2, Eq. 1-3)."""

    name = "schedule"

    def run(self, state: PlanState, ctx: "CompileContext") -> str:
        if state.plan is not None:  # select already compiled the winner
            return "inherited from select"
        strategy = state.strategy
        scheduler = strategy.scheduler_fn()
        if scheduler is None:
            return "strategy does not schedule"
        faults = (
            ctx.effective_faults(strategy) if strategy.schedule_uses_faults else None
        )
        state.problem = SchedulingProblem.from_resharding(
            state.task, granularity=strategy.granularity, faults=faults
        )
        state.schedule = scheduler(state.problem)
        return (
            f"{state.schedule.algorithm or strategy.scheduler_name}: "
            f"makespan bound {state.schedule.makespan:.4g}s"
        )


class FaultRewritePass:
    """Re-root assignments off sender hosts that are down at plan time."""

    name = "fault_rewrite"

    def run(self, state: PlanState, ctx: "CompileContext") -> str:
        if state.plan is not None:  # select already compiled the winner
            return "inherited from select"
        strategy = state.strategy
        faults = ctx.effective_faults(strategy)
        if not strategy.reroot_on_faults or faults is None:
            return "no-op (no faults or strategy does not re-root)"
        if state.schedule is None:
            return "no schedule to rewrite"
        n = reroot_schedule(
            state.task, state.unit_tasks, state.schedule, faults, state.fallbacks
        )
        return f"re-rooted {n} unit task(s)"


class EmitPass:
    """Emit concrete communication ops following the schedule."""

    name = "emit"

    def run(self, state: PlanState, ctx: "CompileContext") -> str:
        if state.plan is not None:  # select already compiled the winner
            return "inherited from select"
        strategy = state.strategy
        plan = CommPlan(
            task=state.task,
            strategy=strategy.name,
            granularity=strategy.granularity,
            data_complete=strategy.data_complete,
        )
        plan.fallbacks = list(state.fallbacks)
        faults = ctx.effective_faults(strategy) if strategy.emit_uses_faults else None
        load = LoadTracker(state.task.cluster, faults=faults)
        strategy.emit(state.task, plan, state.schedule, load)
        if strategy.gate_on_schedule and state.schedule is not None:
            plan.schedule = state.schedule
        # Stamp every op with its per-slice checksum: the end-to-end
        # integrity mark that lets the executor and verify_data detect
        # gray corruption.  Done here (not in each strategy) so every
        # emission backend gets it for free.
        plan.ops = [
            replace(op, checksum=slice_checksum(state.task, op))
            for op in plan.ops
        ]
        state.plan = plan
        return f"{len(plan.ops)} op(s)"


class ValidatePass:
    """Statically prove the plan is well-formed before anything runs.

    Delegates to the analyzer (:func:`repro.analysis.check_plan`):
    coverage, sender authority, dependency sanity, write races, schedule
    consistency after re-rooting, and wait-for deadlock.  The structured
    report is stashed on ``state.analysis``; any ERROR diagnostic aborts
    compilation with every finding (stable code, op ids) in the message.
    """

    name = "validate"

    def run(self, state: PlanState, ctx: "CompileContext") -> str:
        if not ctx.validate:
            return "skipped (ctx.validate=False)"
        assert state.plan is not None
        # Imported here: repro.analysis imports repro.core (and builds
        # plans via the fixture loader); importing it at module scope
        # from inside the compiler would be circular.
        from ..analysis.plan_checker import check_plan

        report = check_plan(
            state.plan,
            faults=ctx.effective_faults(state.strategy),
            memory_budget=ctx.memory_budget,
        )
        state.analysis = report
        errors = report.errors
        if errors:
            raise PlanValidationError(
                "\n".join(diag.format() for diag in errors)
            )
        if not state.plan.data_complete:
            return f"skipped ({state.plan.strategy!r} plans carry no data)"
        n_receivers = len(state.plan.task.dst_mesh.devices)
        return f"coverage ok: {len(state.plan.ops)} op(s), {n_receivers} receiver(s)"


def DEFAULT_PASSES() -> list[CompilerPass]:
    """A fresh instance of the standard pass pipeline, in order."""
    return [
        LowerPass(),
        SelectPass(),
        SchedulePass(),
        FaultRewritePass(),
        EmitPass(),
        ValidatePass(),
    ]
