"""Deterministic compile budgets: bound a pathological plan search.

A production planning frontend cannot let one compile run forever, but a
wall-clock deadline would make *what gets compiled* depend on CPU speed
(the repro-lint L001 rule exists precisely to ban that).  Budgets are
therefore counted in **nominal node expansions** — the same currency the
DFS scheduler already uses for its machine-independent search budget —
at :data:`NODES_PER_SECOND` nodes per "budget second".  A deadline of
``0.5`` means "at most the work a reference machine does in half a
second", identically on every machine, so a compile either always
finishes under a given deadline or always raises :class:`CompileTimeout`.

Each pass charges its deterministic cost after running (the expensive
passes are internally bounded, so the overshoot is at most one pass);
the :class:`~repro.compiler.passes.SelectPass` scoring loop charges per
candidate, so auto-strategy scoring is bounded too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .passes import PlanState

__all__ = ["NODES_PER_SECOND", "CompileTimeout", "CompileBudget", "charge_pass"]

#: nominal node expansions per budget second — mirrors the DFS
#: scheduler's machine-independent search budget
NODES_PER_SECOND = 200_000

#: worst-case node budget of one budgeted DFS/ensemble scheduling run
#: (``time_budget=0.2`` at :data:`NODES_PER_SECOND`)
_DFS_WORST_CASE_NODES = int(0.2 * NODES_PER_SECOND)

#: tasks beyond which the ensemble skips DFS (see ``ensemble_schedule``)
_DFS_MAX_TASKS = 20


class CompileTimeout(Exception):
    """A compile exceeded its deterministic node budget.

    Raised by :func:`~repro.compiler.compile_resharding` when a
    ``deadline`` is set and the accumulated per-pass cost crosses it.
    The same inputs with the same deadline always either complete or
    raise — the outcome never depends on the machine.
    """

    def __init__(self, deadline: float, node_budget: int, spent: int, phase: str):
        self.deadline = deadline
        self.node_budget = node_budget
        self.spent = spent
        self.phase = phase
        super().__init__(
            f"compile exceeded its deadline of {deadline:g}s "
            f"({spent} of {node_budget} budget node(s) spent, "
            f"in phase {phase!r})"
        )


@dataclass
class CompileBudget:
    """Mutable ledger of one compile's node spend against its deadline."""

    deadline: float
    node_budget: int
    spent: int = 0
    last_phase: str = ""

    @classmethod
    def from_deadline(cls, deadline: float) -> "CompileBudget":
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        return cls(deadline=deadline, node_budget=max(1, int(deadline * NODES_PER_SECOND)))

    @property
    def remaining(self) -> int:
        return max(0, self.node_budget - self.spent)

    def charge(self, nodes: int, phase: str) -> None:
        """Record ``nodes`` of work; raise :class:`CompileTimeout` when over."""
        self.spent += max(0, nodes)
        self.last_phase = phase
        if self.spent > self.node_budget:
            raise CompileTimeout(self.deadline, self.node_budget, self.spent, phase)


def _schedule_cost(state: "PlanState") -> int:
    """Deterministic cost of the schedule pass that just ran."""
    if state.schedule is None:
        return len(state.unit_tasks)
    n_tasks = len(state.unit_tasks)
    if state.schedule.algorithm in ("dfs", "ensemble") and n_tasks <= _DFS_MAX_TASKS:
        # The budgeted search may expand up to its full node budget;
        # charge the worst case so the outcome is machine-independent.
        return _DFS_WORST_CASE_NODES
    return max(1, n_tasks * 32)


def charge_pass(
    budget: Optional[CompileBudget],
    name: str,
    state: "PlanState",
    detail: str = "",
) -> None:
    """Charge the deterministic cost of pass ``name`` against ``budget``.

    Passes that report they were no-ops (the post-select ``schedule`` /
    ``fault_rewrite`` / ``emit`` runs that inherit the scored winner) are
    free — their work was already charged inside the scoring loop.
    """
    if budget is None:
        return
    if detail.startswith(("inherited", "skipped", "no-op")):
        budget.charge(0, name)
        return
    if name == "schedule":
        budget.charge(_schedule_cost(state), name)
    elif name == "emit":
        budget.charge(max(1, state.n_ops), name)
    elif name == "validate":
        budget.charge(state.n_ops * 4, name)
    elif name == "select":
        # the scoring loop charges per candidate; the pass itself is free
        budget.charge(0, name)
    else:  # lower, fault_rewrite, custom passes
        budget.charge(max(1, len(state.unit_tasks)), name)
