"""Compiled resharding attached to one pipeline stage edge.

:func:`repro.models.parallel.resolve_comm_edges` compiles each stage
boundary's forward/backward resharding through the plan compiler and
hangs an :class:`EdgeResharding` on the :class:`~repro.pipeline.stage
.CommEdge`.  The pipeline executor then prices every cross-stage message
via :meth:`EdgeResharding.time` — one plan-cache request per message —
so the per-micro-batch repetition of the same resharding is served from
the content-addressed cache instead of recompiling, and the pipeline's
comm latencies are, by construction, ``simulate_plan`` latencies of the
compiled plans (one shared timing path).
"""

from __future__ import annotations

from typing import Optional

from ..core.plan import CommPlan
from ..core.task import ReshardingTask
from .pipeline import CompileContext, CompiledPlan, compile_resharding

__all__ = ["EdgeResharding"]


def _check_routable(task: ReshardingTask) -> None:
    """Fail fast when the edge crosses hosts the topology cannot connect.

    The compile-time mirror of the analyzer's T003: partial topologies
    (a custom zoo entry, a partitioned fabric) should reject the stage
    edge here, with the offending host pair named, rather than surface
    as a wedged flow deep inside the simulator.
    """
    cluster = task.src_mesh.cluster
    topo = cluster.topo
    src_hosts = sorted(set(cluster.hosts_of(task.src_mesh.devices)))
    dst_hosts = sorted(set(cluster.hosts_of(task.dst_mesh.devices)))
    for sh in src_hosts:
        for dh in dst_hosts:
            if sh != dh and not topo.has_route(sh, dh):
                raise ValueError(
                    f"stage edge needs host {sh} -> host {dh} but topology "
                    f"{topo.topology.name!r} defines no route between them"
                )


class EdgeResharding:
    """Both directions of one cross-mesh stage edge, compiled on demand.

    When the strategy is cacheable every call goes through
    :func:`compile_resharding` (registering a cache request; repeats are
    hits).  Uncacheable strategies fall back to a per-edge memo so the
    executor still never compiles the same direction twice.
    """

    def __init__(
        self,
        fwd_task: ReshardingTask,
        bwd_task: ReshardingTask,
        ctx: Optional[CompileContext] = None,
    ) -> None:
        _check_routable(fwd_task)
        self.fwd_task = fwd_task
        self.bwd_task = bwd_task
        self.ctx = ctx if ctx is not None else CompileContext()
        self._memo: dict[str, CompiledPlan] = {}

    def task(self, direction: str) -> ReshardingTask:
        if direction == "fwd":
            return self.fwd_task
        if direction == "bwd":
            return self.bwd_task
        raise ValueError(f"direction must be 'fwd' or 'bwd', got {direction!r}")

    def _cacheable(self) -> bool:
        return (
            self.ctx.resolved_cache() is not None
            and self.ctx.resolved_strategy().cache_key() is not None
        )

    def compiled(self, direction: str) -> CompiledPlan:
        task = self.task(direction)
        if self._cacheable():
            return compile_resharding(task, self.ctx)
        found = self._memo.get(direction)
        if found is None:
            found = self._memo[direction] = compile_resharding(task, self.ctx)
        return found

    def plan(self, direction: str) -> CommPlan:
        return self.compiled(direction).plan

    def time(self, direction: str) -> float:
        """Simulated resharding latency of one message in ``direction``."""
        return self.compiled(direction).total_time

    def __repr__(self) -> str:
        return (
            f"EdgeResharding(shape={self.fwd_task.shape}, "
            f"{self.fwd_task.src_spec}->{self.fwd_task.dst_spec})"
        )
