"""The staged plan compiler: ``compile_resharding(task, ctx) -> CompiledPlan``.

One entry point now serves every consumer of a resharding plan — the
public :func:`repro.core.api.reshard`, the pipeline executor's
cross-mesh stage edges, the auto strategy's scoring loop, and recovery
:func:`repro.recovery.replan.replan` — so they all share one compile
path, one timing model, and one content-addressed cache.

The compiler is an explicit pass manager over :class:`~repro.compiler
.passes.PlanState` (see :mod:`repro.compiler.passes` for the pass
pipeline itself).  Each pass run is instrumented with wall time and
op-count deltas (:class:`PassTiming`), and a ``dump_after`` hook lets
the CLI print the evolving plan after any pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from ..core.executor import TimingResult, simulate_plan
from ..core.plan import CommPlan
from ..core.task import ReshardingTask
from ..core.validate import verify_plan_coverage
from ..core.verify_data import IntegrityReport, verify_delivery
from ..sim.faults import FaultSchedule, RetryPolicy
from ..strategies import make_strategy
from ..strategies.base import CommStrategy
from .budget import CompileBudget, CompileTimeout, charge_pass
from .cache import PlanCache, default_plan_cache, plan_signature
from .passes import DEFAULT_PASSES, CompilerPass, PlanState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .resim import ResimCache

__all__ = [
    "PassTiming",
    "CompileDiagnostics",
    "PassManager",
    "CompileContext",
    "CompiledPlan",
    "compile_resharding",
    "CompileTimeout",
    "USE_DEFAULT_CACHE",
]


@dataclass(frozen=True)
class PassTiming:
    """Instrumentation record for one pass run."""

    name: str
    seconds: float
    ops_before: int
    ops_after: int
    detail: str = ""

    @property
    def op_delta(self) -> int:
        return self.ops_after - self.ops_before


@dataclass
class CompileDiagnostics:
    """Per-pass instrumentation for one compile."""

    passes: list[PassTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.passes)

    def format_table(self) -> str:
        """Human-readable per-pass timing/op-delta table."""
        lines = [f"{'pass':<14}{'wall':>10}  {'ops':>9}  detail"]
        for p in self.passes:
            delta = f"{p.op_delta:+d}" if p.op_delta else "."
            lines.append(
                f"{p.name:<14}{p.seconds * 1e3:>8.3f}ms  {delta:>9}  {p.detail}"
            )
        lines.append(f"{'total':<14}{self.total_seconds * 1e3:>8.3f}ms")
        return "\n".join(lines)


class PassManager:
    """Run a pass list over a :class:`PlanState`, instrumenting each pass."""

    def __init__(self, passes: Optional[list[CompilerPass]] = None) -> None:
        self.passes = list(passes) if passes is not None else DEFAULT_PASSES()

    def run(self, state: PlanState, ctx: "CompileContext") -> CompileDiagnostics:
        diag = CompileDiagnostics()
        for p in self.passes:
            ops_before = state.n_ops
            # repro-lint: allow[L001] pass-timing telemetry only; never read by planning
            t0 = time.perf_counter()
            detail = p.run(state, ctx) or ""
            seconds = time.perf_counter() - t0  # repro-lint: allow[L001] telemetry only
            diag.passes.append(
                PassTiming(
                    name=p.name,
                    seconds=seconds,
                    ops_before=ops_before,
                    ops_after=state.n_ops,
                    detail=detail,
                )
            )
            charge_pass(ctx.budget, p.name, state, detail)
            if p.name in ctx.dump_after and ctx.on_dump is not None:
                ctx.on_dump(p.name, state)
        return diag


#: sentinel: "use the process-wide default cache" (``cache=None`` disables)
USE_DEFAULT_CACHE: Any = object()


@dataclass
class CompileContext:
    """Everything a compile depends on besides the task itself.

    ``strategy`` may be a registry name (instantiated via
    :func:`~repro.strategies.make_strategy` with ``strategy_kwargs``) or
    a ready :class:`~repro.strategies.CommStrategy` instance.  Context
    ``faults``/``retry_policy`` override the strategy's own; both feed
    the cache signature.  ``cache`` defaults to the process-wide
    :func:`~repro.compiler.cache.default_plan_cache`; pass ``None`` to
    compile uncached.
    """

    strategy: Union[str, CommStrategy] = "broadcast"
    strategy_kwargs: dict[str, Any] = field(default_factory=dict)
    faults: Optional[FaultSchedule] = None
    retry_policy: Optional[RetryPolicy] = None
    cache: Any = USE_DEFAULT_CACHE
    #: checkpoint cache for incremental re-simulation in the select
    #: pass (see :mod:`repro.compiler.resim`); defaults to the
    #: process-wide cache, ``None`` scores candidates cold
    resim_cache: Any = USE_DEFAULT_CACHE
    #: deterministic compile deadline in nominal seconds (see
    #: :mod:`repro.compiler.budget`); ``None`` leaves compiles unbounded
    deadline: Optional[float] = None
    #: the per-compile ledger; reset by ``compile_resharding`` per call
    budget: Optional[CompileBudget] = None
    #: run the static coverage validator as the final pass
    validate: bool = False
    #: per-host transient buffer budget (bytes) for this compile; when
    #: ``None`` the task's :class:`~repro.sim.cluster.ClusterSpec`
    #: ``memory_budget`` (if any) applies.  Feeds the cache signature
    #: (only when set), the select pass's feasibility scoring (M003),
    #: and the validate pass (M001).
    memory_budget: Optional[float] = None
    #: pass names after which ``on_dump(name, state)`` fires
    dump_after: tuple[str, ...] = ()
    on_dump: Optional[Callable[[str, PlanState], None]] = None
    passes: Optional[list[CompilerPass]] = None

    def resolved_strategy(self) -> CommStrategy:
        if isinstance(self.strategy, CommStrategy):
            if self.strategy_kwargs:
                raise ValueError("cannot pass strategy_kwargs with an instance")
            return self.strategy
        strategy = make_strategy(self.strategy, **self.strategy_kwargs)
        # Rebind so repeated compiles through one context reuse the
        # instance (and, for auto, its accumulated last_scores).
        self.strategy = strategy
        return strategy

    def resolved_cache(self) -> Optional[PlanCache]:
        if self.cache is USE_DEFAULT_CACHE:
            return default_plan_cache()
        return self.cache

    def resolved_resim_cache(self) -> "Optional[ResimCache]":
        if self.resim_cache is USE_DEFAULT_CACHE:
            from .resim import default_resim_cache

            return default_resim_cache()
        return self.resim_cache

    def effective_memory_budget(self, task: ReshardingTask) -> Optional[float]:
        """The budget in force for ``task``: context override, else spec."""
        if self.memory_budget is not None:
            return self.memory_budget
        return task.cluster.spec.memory_budget

    def effective_faults(self, strategy: CommStrategy) -> Optional[FaultSchedule]:
        if self.faults is not None:
            return self.faults
        return getattr(strategy, "faults", None)

    def effective_retry_policy(self, strategy: CommStrategy) -> Optional[RetryPolicy]:
        if self.retry_policy is not None:
            return self.retry_policy
        return getattr(strategy, "retry_policy", None)


@dataclass
class CompiledPlan:
    """A compiled plan plus everything learned while compiling it.

    ``timing`` is populated by the select pass (the auto strategy's
    scored winner) or lazily by :meth:`ensure_timing` — either way a
    consumer never simulates the same plan twice.  ``faults`` and
    ``retry_policy`` record the scenario the plan was compiled (and is
    simulated) under; they are part of the cache signature.
    """

    plan: CommPlan
    signature: Optional[str] = None
    diagnostics: CompileDiagnostics = field(default_factory=CompileDiagnostics)
    faults: Optional[FaultSchedule] = None
    retry_policy: Optional[RetryPolicy] = None
    timing: Optional[TimingResult] = None
    validated: bool = False
    #: strategy-choice scores from the select pass (auto strategy only)
    scores: list[tuple[str, float]] = field(default_factory=list)

    @property
    def strategy_name(self) -> str:
        return self.plan.strategy

    def ensure_timing(self) -> TimingResult:
        """Simulate the plan once; memoized for every later caller."""
        if self.timing is None:
            self.timing = simulate_plan(
                self.plan, faults=self.faults, retry_policy=self.retry_policy
            )
        return self.timing

    @property
    def total_time(self) -> float:
        return self.ensure_timing().total_time

    def ensure_validated(self) -> "CompiledPlan":
        """Run the static coverage check (idempotent)."""
        if not self.validated:
            if self.plan.data_complete:
                verify_plan_coverage(self.plan)
            self.validated = True
        return self

    def certify(self, strict: bool = True) -> IntegrityReport:
        """Execution-aware data-plane integrity check (verify_data)."""
        return verify_delivery(self.plan, timing=self.ensure_timing(), strict=strict)


def compile_resharding(
    task: ReshardingTask,
    ctx: Optional[CompileContext] = None,
    **ctx_kwargs,
) -> CompiledPlan:
    """Compile ``task`` through the pass pipeline, cache-aware.

    The cache is consulted only when the strategy exposes a canonical
    :meth:`~repro.strategies.CommStrategy.cache_key` (custom subclasses
    without one compile uncached rather than wrongly).  A hit returns
    the stored :class:`CompiledPlan` — including its memoized timing —
    without running any pass.
    """
    if ctx is None:
        ctx = CompileContext(**ctx_kwargs)
    elif ctx_kwargs:
        raise ValueError("pass either a CompileContext or kwargs, not both")
    strategy = ctx.resolved_strategy()
    faults = ctx.effective_faults(strategy)
    retry_policy = ctx.effective_retry_policy(strategy)

    cache = ctx.resolved_cache()
    signature: Optional[str] = None
    epoch = 0
    if cache is not None:
        strategy_key = strategy.cache_key()
        if strategy_key is not None:
            # A context-level budget override shapes the compile (select
            # feasibility, validation), so it must shape the signature —
            # folded in only when set, keeping budget-free signatures
            # byte-identical to before.
            if ctx.memory_budget is not None:
                strategy_key = strategy_key + (
                    ("memory_budget", ctx.memory_budget),
                )
            epoch = cache.epoch
            signature = plan_signature(
                task, strategy_key, faults, retry_policy, epoch=epoch
            )
            hit = cache.lookup(signature)
            if hit is not None:
                if ctx.validate:
                    hit.ensure_validated()
                return hit

    # The deadline bounds one compile: open a fresh ledger per call so a
    # reused context never inherits spend from an earlier compile.
    ctx.budget = (
        CompileBudget.from_deadline(ctx.deadline) if ctx.deadline is not None else None
    )
    state = PlanState(task=task, strategy=strategy)
    diagnostics = PassManager(ctx.passes).run(state, ctx)
    assert state.plan is not None
    compiled = CompiledPlan(
        plan=state.plan,
        signature=signature,
        diagnostics=diagnostics,
        faults=faults,
        retry_policy=retry_policy,
        timing=state.timing,
        validated=ctx.validate,
        scores=list(state.scores),
    )
    if signature is not None:
        cache.store(signature, compiled, epoch=epoch)
    return compiled
