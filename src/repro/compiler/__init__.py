"""Staged plan compiler for cross-mesh resharding.

``compile_resharding(task, ctx) -> CompiledPlan`` runs an explicit pass
pipeline (lower -> select -> schedule -> fault_rewrite -> emit ->
validate) behind a content-addressed plan cache.  See
``docs/architecture.md`` for the full tour.
"""

from .budget import NODES_PER_SECOND, CompileBudget, CompileTimeout
from .cache import (
    CacheStats,
    PlanCache,
    ShardStats,
    default_plan_cache,
    plan_signature,
    reset_default_plan_cache,
    task_signature,
)
from .edge import EdgeResharding
from .passes import (
    DEFAULT_PASSES,
    EmitPass,
    FaultRewritePass,
    LowerPass,
    PlanState,
    SchedulePass,
    SelectPass,
    ValidatePass,
)
from .pipeline import (
    USE_DEFAULT_CACHE,
    CompileContext,
    CompiledPlan,
    CompileDiagnostics,
    PassManager,
    PassTiming,
    compile_resharding,
)
from .resim import (
    ResimCache,
    ResimStats,
    SimCheckpoint,
    default_resim_cache,
    reset_default_resim_cache,
    resimulate,
)

__all__ = [
    "compile_resharding",
    "CompileContext",
    "CompiledPlan",
    "CompileDiagnostics",
    "PassManager",
    "PassTiming",
    "PlanState",
    "LowerPass",
    "SelectPass",
    "SchedulePass",
    "FaultRewritePass",
    "EmitPass",
    "ValidatePass",
    "DEFAULT_PASSES",
    "PlanCache",
    "CacheStats",
    "ShardStats",
    "CompileBudget",
    "CompileTimeout",
    "NODES_PER_SECOND",
    "plan_signature",
    "task_signature",
    "default_plan_cache",
    "reset_default_plan_cache",
    "EdgeResharding",
    "USE_DEFAULT_CACHE",
    "ResimCache",
    "ResimStats",
    "SimCheckpoint",
    "resimulate",
    "default_resim_cache",
    "reset_default_resim_cache",
]
