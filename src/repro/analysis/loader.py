"""Load hand-written plans from JSON — the bad-plan fixture format.

Known-bad plans cannot be built through :meth:`CommPlan.add` (it rejects
out-of-sequence op ids and unknown deps at construction time), and they
should not be Python code that silently "fixes itself" when the IR
evolves.  So regression fixtures live as data under
``tests/fixtures/bad_plans/`` and are materialized here, bypassing the
builder invariants on purpose: the static analyzer is the component
under test, and it must reject these plans with the exact documented
diagnostic codes listed in each fixture's ``expect`` field.

Schema (all sizes in elements; nbytes defaults to fp32)::

    {
      "description": "...",
      "expect": ["P001"],                      // codes that must fire
      "cluster": {"n_hosts": 4, "devices_per_host": 2,
                  "memory_budget": 1048576,                // optional, bytes/host
                  "failure_domains": [                     // optional
                    {"name": "rack0", "hosts": [0, 1], "kind": "rack"}],
                  "topology": {"name": "fat_tree",         // optional
                               "hosts_per_leaf": 2},
                  "link_overrides": [                      // optional
                    {"src": 0, "dst": 1, "bandwidth": 1e9}]},
      "shape": [8, 8],
      "src": {"hosts": [0, 1], "spec": "S0R"},
      "dst": {"hosts": [2, 3], "spec": "RS1"},
      "granularity": "intersection",           // optional
      "ops": [
        {"kind": "send", "id": 0, "task": 0, "region": [[0, 4], [0, 8]],
         "sender": 0, "receiver": 4, "deps": [1]},
        {"kind": "broadcast", ..., "receivers": [4, 5]},
        {"kind": "multicast", ..., "receivers": [4, 5], "switch": "leaf0"},
        {"kind": "scatter", ..., "receivers": [4, 5]},
        {"kind": "allgather", ..., "devices": [4, 5]}
      ],
      "schedule": {"assignment": {"0": 1}, "order": [0]},   // optional
      "fallbacks": [{"task": 0, "from_host": 0, "to_host": 1,
                     "reason": "sender-host-down"}]          // optional
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Union

import numpy as np

from ..core.mesh import DeviceMesh
from ..core.plan import (
    AllGatherOp,
    BroadcastOp,
    CommOp,
    CommPlan,
    FallbackRecord,
    MulticastOp,
    ScatterOp,
    SendOp,
)
from ..core.task import ReshardingTask
from ..core.tensor import region_nbytes
from ..scheduling.problem import Schedule
from ..sim.cluster import Cluster, ClusterSpec, FailureDomain, LinkOverride
from ..sim.topology import make_topology

__all__ = ["PlanFixture", "load_plan_fixture", "plan_from_dict"]


@dataclass
class PlanFixture:
    """One parsed fixture: the plan plus what the analyzer must say."""

    plan: CommPlan
    expect: tuple[str, ...]
    description: str
    path: str = ""


def _region(raw: Any) -> tuple[tuple[int, int], ...]:
    return tuple((int(lo), int(hi)) for lo, hi in raw)


def _op_from_dict(raw: dict[str, Any], dtype: np.dtype) -> CommOp:
    region = _region(raw["region"])
    common: dict[str, Any] = dict(
        op_id=int(raw["id"]),
        unit_task_id=int(raw.get("task", -1)),
        region=region,
        nbytes=float(raw.get("nbytes", region_nbytes(region, dtype))),
        deps=tuple(int(d) for d in raw.get("deps", ())),
    )
    kind = raw["kind"]
    if kind == "send":
        return SendOp(
            sender=int(raw["sender"]), receiver=int(raw["receiver"]), **common
        )
    if kind == "broadcast":
        return BroadcastOp(
            sender=int(raw["sender"]),
            receivers=tuple(int(r) for r in raw["receivers"]),
            n_chunks=int(raw.get("n_chunks", 1)),
            **common,
        )
    if kind == "multicast":
        return MulticastOp(
            sender=int(raw["sender"]),
            receivers=tuple(int(r) for r in raw["receivers"]),
            switch=str(raw.get("switch", "")),
            n_chunks=int(raw.get("n_chunks", 1)),
            **common,
        )
    if kind == "scatter":
        return ScatterOp(
            sender=int(raw["sender"]),
            receivers=tuple(int(r) for r in raw["receivers"]),
            **common,
        )
    if kind == "allgather":
        return AllGatherOp(
            devices=tuple(int(d) for d in raw["devices"]), **common
        )
    raise ValueError(f"unknown op kind {kind!r}")


def plan_from_dict(raw: dict[str, Any]) -> CommPlan:
    """Materialize a CommPlan from fixture data, builder checks bypassed."""
    cluster_raw = dict(raw.get("cluster", {}))
    cluster_raw["failure_domains"] = tuple(
        FailureDomain(
            name=str(d["name"]),
            hosts=tuple(int(h) for h in d["hosts"]),
            kind=str(d.get("kind", "rack")),
        )
        for d in cluster_raw.get("failure_domains", ())
    )
    if "topology" in cluster_raw:
        topo_raw = dict(cluster_raw.pop("topology"))
        cluster_raw["topology"] = make_topology(
            str(topo_raw.pop("name")), **topo_raw
        )
    cluster_raw["link_overrides"] = tuple(
        LinkOverride(
            src_host=int(o["src"]),
            dst_host=int(o["dst"]),
            bandwidth=(float(o["bandwidth"]) if "bandwidth" in o else None),
            latency=(float(o["latency"]) if "latency" in o else None),
        )
        for o in cluster_raw.get("link_overrides", ())
    )
    spec = ClusterSpec(**cluster_raw)
    cluster = Cluster(spec)
    src = DeviceMesh.from_hosts(cluster, [int(h) for h in raw["src"]["hosts"]])
    dst = DeviceMesh.from_hosts(cluster, [int(h) for h in raw["dst"]["hosts"]])
    task = ReshardingTask(
        tuple(int(s) for s in raw["shape"]),
        src,
        raw["src"]["spec"],
        dst,
        raw["dst"]["spec"],
        dtype=np.float32,
    )
    plan = CommPlan(
        task=task,
        strategy=str(raw.get("strategy", "fixture")),
        granularity=str(raw.get("granularity", "intersection")),
        data_complete=bool(raw.get("data_complete", True)),
    )
    # Assign directly: fixtures must be able to express out-of-sequence
    # op ids, dangling deps, and forward deps that plan.add() rejects.
    plan.ops = [_op_from_dict(op, task.dtype) for op in raw.get("ops", ())]
    if "schedule" in raw:
        sched = raw["schedule"]
        plan.schedule = Schedule(
            assignment={int(k): int(v) for k, v in sched["assignment"].items()},
            order=tuple(int(t) for t in sched["order"]),
            algorithm=str(sched.get("algorithm", "fixture")),
        )
    for fb in raw.get("fallbacks", ()):
        plan.fallbacks.append(
            FallbackRecord(
                unit_task_id=int(fb["task"]),
                from_host=int(fb["from_host"]),
                to_host=int(fb["to_host"]),
                reason=str(fb.get("reason", "fixture")),
            )
        )
    return plan


def load_plan_fixture(path: Union[str, Path]) -> PlanFixture:
    """Read one ``tests/fixtures/bad_plans/*.json`` fixture."""
    p = Path(path)
    raw = json.loads(p.read_text(encoding="utf-8"))
    return PlanFixture(
        plan=plan_from_dict(raw),
        expect=tuple(str(c) for c in raw.get("expect", ())),
        description=str(raw.get("description", "")),
        path=str(p),
    )
