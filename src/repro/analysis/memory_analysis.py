"""Static peak-memory analysis of communication plans (M-codes).

:func:`static_host_bounds` abstractly interprets a
:class:`~repro.core.plan.CommPlan` and computes, per host, a **sound
upper bound** on the transient buffer bytes live at any instant while
the plan executes: receive-side landing buffers, scatter staging parts,
multicast/broadcast fanout copies — including the re-rooted duplicates
a :class:`~repro.compiler.passes.FaultRewritePass` rewrite introduces,
since attribution is receiver-side and survives sender changes.

The per-op charges come from :func:`repro.core.buffers.op_host_buffers`
— the *same* attribution the runtime accounting in
:class:`~repro.core.executor.PlanRunner` charges at op launch and
releases at op completion.  Soundness therefore reduces to the
serialization argument below, and ``tests``/``python -m repro fuzz``
pin ``static_bound >= simulated_peak`` on every run.

Serialization argument
======================

*Gated plans* (the plan carries a schedule and the strategy gates on
it): the executor chains unit tasks per host — task *t* may start only
after the previous task in schedule order that touches one of *t*'s
hosts has finished, where "touches" means ``receiver_hosts(t) ∪
{assignment[t]}`` (the executor's ``last_on_host`` construction, the
same order oracle :func:`repro.analysis.deadlock.schedule_gating_preds`
proves deadlock-freedom over).  A finished task has completed every op,
so its buffers are released before any successor on the same host
launches.  Hence at most one scheduled task's buffers are live per host
at a time, and::

    bound[h] = concurrent[h] + max over scheduled tasks t touching h
               of sum(op buffers on h for ops of t)

``concurrent[h]`` collects contributions the gating order says nothing
about: schedule-free (task id ``-1``) ops, and ops of tasks missing
from the schedule.  Those are combined by **dependency-chain
decomposition** — ops linked by a dep edge are serialized (the executor
releases an op's buffers before launching its dependents), so each
chain contributes its max and concurrent chains sum.

*Ungated plans* (the baselines): every op may overlap, so the whole op
list is chain-decomposed the same way.

M-codes
=======

* **M001** — the bound exceeds the effective ``memory_budget`` (from
  :class:`~repro.sim.cluster.ClusterSpec` or an explicit override) on
  at least one host;
* **M002** — a buffer cannot be attributed/bounded: an op's byte count
  is not finite, or a gated op delivers to a host outside its unit
  task's gating host set (the serialization argument does not cover it;
  the analyzer then counts it as always-concurrent to stay sound);
* **M003** — raised by :class:`~repro.compiler.passes.SelectPass`, not
  here: every auto-strategy candidate is budget-infeasible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.buffers import op_host_buffers
from ..core.plan import CommOp, CommPlan
from ..core.task import UnitCommTask
from ..sim.cluster import Cluster
from .diagnostics import AnalysisReport

__all__ = [
    "MemoryAnalysis",
    "static_host_bounds",
    "check_plan_memory",
]

#: absolute slack (bytes) for float-accumulation residue when comparing
#: a simulated high-water mark against the static bound
SOUNDNESS_SLACK_BYTES = 1e-6


@dataclass(frozen=True)
class MemoryAnalysis:
    """The static memory proof for one plan."""

    #: sound per-host upper bound on live transient buffer bytes
    per_host: dict[int, float] = field(default_factory=dict)
    #: the always-concurrent share of ``per_host`` (ungated/uncovered ops)
    concurrent: dict[int, float] = field(default_factory=dict)
    #: True when the schedule's host-serialization order was usable
    gated: bool = False
    #: ops with a non-finite byte count (bound is unattributable: M002)
    nonfinite_ops: tuple[int, ...] = ()
    #: gated ops delivering outside their task's gating host set (M002)
    uncovered_ops: tuple[int, ...] = ()

    @property
    def peak(self) -> float:
        """The worst per-host bound (0.0 for an op-free plan)."""
        return max(self.per_host.values(), default=0.0)

    @property
    def peak_host(self) -> Optional[int]:
        """The host attaining :attr:`peak` (lowest id wins ties)."""
        if not self.per_host:
            return None
        return min(
            self.per_host, key=lambda h: (-self.per_host[h], h)
        )

    def dominates(self, observed: dict[int, float]) -> bool:
        """True when the bound covers an observed per-host peak map."""
        return all(
            peak <= self.per_host.get(host, 0.0) + SOUNDNESS_SLACK_BYTES
            for host, peak in observed.items()
        )

    def format_table(self) -> str:
        """Human-readable per-host bound table (CLI ``--explain``)."""
        lines = [f"{'host':>6}  {'static bound':>14}  {'concurrent':>12}"]
        for host in sorted(self.per_host):
            lines.append(
                f"{host:>6}  {self.per_host[host]:>14.0f}  "
                f"{self.concurrent.get(host, 0.0):>12.0f}"
            )
        return "\n".join(lines)


def _finite_buffers(
    op: CommOp,
    cluster: Cluster,
    nonfinite: list[int],
) -> dict[int, float]:
    """Per-host charges for one op, mapping non-finite sizes to +inf."""
    buffers = op_host_buffers(cluster, op)
    if not math.isfinite(op.nbytes):
        nonfinite.append(op.op_id)
        return {h: math.inf for h in buffers} if buffers else {}
    # Negative byte counts are a P008 defect; clamp so the bound cannot
    # be *reduced* by a malformed op.
    return {h: max(v, 0.0) for h, v in buffers.items()}


def _chain_bound(
    ops: list[CommOp], charges: dict[int, dict[int, float]]
) -> dict[int, float]:
    """Sum-of-chain-maxima bound for ops with no gating between them.

    Ops are greedily threaded into dependency chains (an op joins the
    chain of its first dep whose chain it is the first to extend);
    consecutive chain members are serialized by the executor's
    release-before-launch order, so a chain contributes its per-host
    max and distinct chains sum.
    """
    chain_of: dict[int, int] = {}
    extended: set[int] = set()
    chain_max: dict[int, dict[int, float]] = {}
    next_chain = 0
    in_scope = {op.op_id for op in ops}
    for op in ops:
        cid = None
        for dep in op.deps:
            if dep in in_scope and dep in chain_of and dep not in extended:
                cid = chain_of[dep]
                extended.add(dep)
                break
        if cid is None:
            cid = next_chain
            next_chain += 1
            chain_max[cid] = {}
        chain_of[op.op_id] = cid
        peaks = chain_max[cid]
        for host, nbytes in charges.get(op.op_id, {}).items():
            if nbytes > peaks.get(host, 0.0):
                peaks[host] = nbytes
    out: dict[int, float] = {}
    for peaks in chain_max.values():
        for host, nbytes in peaks.items():
            out[host] = out.get(host, 0.0) + nbytes
    return out


def static_host_bounds(
    plan: CommPlan, unit_tasks: Optional[list[UnitCommTask]] = None
) -> MemoryAnalysis:
    """Compute the sound per-host peak-buffer bound for ``plan``.

    ``unit_tasks`` may be passed to reuse a decomposition the caller
    (e.g. :func:`~repro.analysis.plan_checker.check_plan`) already
    computed.
    """
    cluster = plan.task.cluster
    nonfinite: list[int] = []
    uncovered: list[int] = []
    charges = {
        op.op_id: _finite_buffers(op, cluster, nonfinite) for op in plan.ops
    }

    schedule = plan.schedule
    task_ops = plan.ops_by_task()
    per_host: dict[int, float] = {}
    concurrent: dict[int, float] = {}
    gated = schedule is not None

    if schedule is None:
        concurrent = _chain_bound(list(plan.ops), charges)
        per_host = dict(concurrent)
        return MemoryAnalysis(
            per_host=per_host,
            concurrent=concurrent,
            gated=False,
            nonfinite_ops=tuple(sorted(set(nonfinite))),
            uncovered_ops=(),
        )

    if unit_tasks is None:
        unit_tasks = plan.task.unit_tasks(plan.granularity)
    ut_by_id = {ut.task_id: ut for ut in unit_tasks}

    # The executor's gating host set per scheduled task, and the sum of
    # each task's covered op charges per host (ops within one task may
    # all be concurrent — their sum is the task's footprint).
    loose_ops: list[CommOp] = list(task_ops.get(-1, ()))
    task_footprint: dict[int, dict[int, float]] = {}
    gating_hosts: dict[int, frozenset[int]] = {}
    scheduled = set(schedule.assignment) & set(task_ops)
    for tid in sorted(scheduled):
        if tid == -1:
            continue
        ut = ut_by_id.get(tid)
        hosts = set(plan.task.receiver_hosts(ut)) if ut is not None else set()
        hosts.add(schedule.assignment[tid])
        gating_hosts[tid] = frozenset(hosts)
        footprint: dict[int, float] = {}
        for op in task_ops[tid]:
            outside = [h for h in charges[op.op_id] if h not in hosts]
            if outside:
                # The serialization order says nothing about these
                # deliveries; count the whole op as always-concurrent
                # (sound) and report it (M002).
                uncovered.append(op.op_id)
                loose_ops.append(op)
                continue
            for host, nbytes in charges[op.op_id].items():
                footprint[host] = footprint.get(host, 0.0) + nbytes
        task_footprint[tid] = footprint

    # Tasks that emit ops but are absent from the schedule are never
    # gated (P007 territory): always-concurrent.
    for tid, ops in task_ops.items():
        if tid != -1 and tid not in schedule.assignment:
            loose_ops.extend(ops)

    concurrent = _chain_bound(loose_ops, charges)
    per_host = dict(concurrent)
    serialized: dict[int, float] = {}
    for tid, footprint in task_footprint.items():
        for host, nbytes in footprint.items():
            if nbytes > serialized.get(host, 0.0):
                serialized[host] = nbytes
    for host, nbytes in serialized.items():
        per_host[host] = per_host.get(host, 0.0) + nbytes

    return MemoryAnalysis(
        per_host=per_host,
        concurrent=concurrent,
        gated=gated,
        nonfinite_ops=tuple(sorted(set(nonfinite))),
        uncovered_ops=tuple(sorted(set(uncovered))),
    )


def check_plan_memory(
    plan: CommPlan,
    report: AnalysisReport,
    unit_tasks: Optional[list[UnitCommTask]] = None,
    memory_budget: Optional[float] = None,
) -> MemoryAnalysis:
    """Run the memory analysis and file M001/M002 findings on ``report``.

    ``memory_budget`` overrides the cluster spec's own budget; with
    neither set only M002 (unattributable buffers) can fire.
    """
    analysis = static_host_bounds(plan, unit_tasks=unit_tasks)
    for op_id in analysis.nonfinite_ops:
        report.add(
            "M002",
            f"op {op_id}: byte count is not finite; its transient buffer "
            "cannot be bounded",
            op_ids=(op_id,),
        )
    for op_id in analysis.uncovered_ops:
        report.add(
            "M002",
            f"op {op_id}: delivers to host(s) outside its unit task's "
            "schedule-gating host set; the buffer is unattributable to "
            "the serialization order and was counted as always-concurrent",
            op_ids=(op_id,),
        )
    budget = (
        memory_budget
        if memory_budget is not None
        else plan.task.cluster.spec.memory_budget
    )
    if budget is not None:
        over = sorted(
            h for h, bound in analysis.per_host.items() if bound > budget
        )
        if over:
            worst = analysis.peak
            report.add(
                "M001",
                f"static peak-buffer bound {worst:.0f} B exceeds "
                f"memory_budget {budget:.0f} B on host(s) {over} "
                f"(gated={analysis.gated})",
            )
    return analysis
