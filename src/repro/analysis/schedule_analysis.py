"""Static analysis of pipeline schedules: memory bounds and structure.

The executor measures peak in-flight activations by running a schedule
(:func:`repro.pipeline.memory.memory_report`); this module *bounds* them
without running anything, directly from the per-stage task orders, and
flags schedules that cannot fit a stage's memory capacity (``S001``) or
are structurally malformed (``S002``).  Deadlock detection over the same
orders (``D002``) is delegated to
:func:`repro.analysis.deadlock.check_stage_orders_deadlock`.

For the named schedules the static peak equals the analytic warm-up
depth of :func:`repro.pipeline.memory.analytic_peak_inflight` — pinned
by a test — so the analyzer and the §4/Table-1 analysis can never drift
apart.
"""

from __future__ import annotations

from typing import Optional

from ..pipeline.schedules import Task, schedule_job
from ..pipeline.stage import PipelineJob, StageProfile
from .deadlock import check_stage_orders_deadlock
from .diagnostics import AnalysisReport

__all__ = [
    "static_peak_inflight",
    "check_stage_orders",
    "analyze_pipeline_schedule",
]


def static_peak_inflight(order: list[Task]) -> int:
    """Peak concurrently-stored activations implied by one stage's order.

    An activation is stored when its forward runs and freed when its
    activation-gradient backward (``Bx``, or fused ``B``) runs; ``Bw``
    reads weight-gradient state, not the stored activation.
    """
    live = 0
    peak = 0
    for t in order:
        if t.kind == "F":
            live += 1
            peak = max(peak, live)
        elif t.kind in ("B", "Bx"):
            live -= 1
    return peak


def _check_structure(
    stage_id: int, order: list[Task], n_microbatches: int, report: AnalysisReport
) -> None:
    fwd_pos: dict[int, int] = {}
    bwd_pos: dict[int, int] = {}
    bx_pos: dict[int, int] = {}
    bw_pos: dict[int, int] = {}
    for pos, t in enumerate(order):
        table = {"F": fwd_pos, "B": bwd_pos, "Bx": bx_pos, "Bw": bw_pos}.get(t.kind)
        if table is None:
            report.add(
                "S002",
                f"stage {stage_id}: unknown task kind {t.kind!r} at position {pos}",
                task_ids=(stage_id,),
            )
            continue
        if t.microbatch in table:
            report.add(
                "S002",
                f"stage {stage_id}: duplicate {t.kind}{t.microbatch}",
                task_ids=(stage_id,),
            )
        table[t.microbatch] = pos

    want = set(range(n_microbatches))
    if set(fwd_pos) != want:
        report.add(
            "S002",
            f"stage {stage_id}: forwards cover micro-batches "
            f"{sorted(fwd_pos)}, expected {sorted(want)}",
            task_ids=(stage_id,),
        )
    grads = dict(bwd_pos)
    grads.update(bx_pos)
    if set(grads) != want:
        report.add(
            "S002",
            f"stage {stage_id}: backwards cover micro-batches "
            f"{sorted(grads)}, expected {sorted(want)}",
            task_ids=(stage_id,),
        )
    if bx_pos and set(bw_pos) != set(bx_pos):
        report.add(
            "S002",
            f"stage {stage_id}: Bx/Bw split is unbalanced "
            f"(Bx for {sorted(bx_pos)}, Bw for {sorted(bw_pos)})",
            task_ids=(stage_id,),
        )
    for mb, pos in sorted(grads.items()):
        if mb in fwd_pos and pos < fwd_pos[mb]:
            report.add(
                "S002",
                f"stage {stage_id}: backward of micro-batch {mb} precedes "
                "its forward",
                task_ids=(stage_id,),
            )
    for mb, pos in sorted(bw_pos.items()):
        if mb in bx_pos and pos < bx_pos[mb]:
            report.add(
                "S002",
                f"stage {stage_id}: Bw{mb} precedes Bx{mb}",
                task_ids=(stage_id,),
            )


def _check_memory(
    stage: StageProfile, order: list[Task], report: AnalysisReport
) -> None:
    if stage.memory_capacity <= 0:
        return
    peak = static_peak_inflight(order)
    need = stage.params_bytes + peak * stage.activation_bytes
    if need > stage.memory_capacity:
        report.add(
            "S001",
            f"stage {stage.stage_id}: {peak} in-flight activation(s) need "
            f"{need:.0f} bytes ({stage.params_bytes:.0f} params + "
            f"{peak} x {stage.activation_bytes:.0f}), over the "
            f"{stage.memory_capacity:.0f}-byte capacity",
            task_ids=(stage.stage_id,),
        )


def check_stage_orders(
    orders: list[list[Task]],
    n_microbatches: int,
    job: Optional[PipelineJob] = None,
) -> AnalysisReport:
    """Analyze explicit per-stage task orders: S001/S002 plus D002."""
    report = AnalysisReport(subject="pipeline-schedule")
    for s, order in enumerate(orders):
        _check_structure(s, order, n_microbatches, report)
        if job is not None and s < len(job.stages):
            _check_memory(job.stages[s], order, report)
    report.extend(check_stage_orders_deadlock(orders, job))
    return report


def analyze_pipeline_schedule(
    schedule: str,
    n_stages: int,
    n_microbatches: int,
    job: Optional[PipelineJob] = None,
    delay_bw_weight: bool = False,
    delay_slots: int = 1,
) -> AnalysisReport:
    """Analyze a named schedule (gpipe / 1f1b / eager_1f1b) statically."""
    orders = schedule_job(
        schedule,
        n_stages,
        n_microbatches,
        delay_bw_weight=delay_bw_weight,
        delay_slots=delay_slots,
    )
    report = check_stage_orders(orders, n_microbatches, job)
    report.subject = f"pipeline-schedule[{schedule}]"
    return report
