"""Structured diagnostics shared by every static analyzer in this package.

Each finding is a :class:`Diagnostic` with a **stable code** from the
catalog below, a severity, a human-readable message, and (where
applicable) the op / unit-task / file location it anchors to.  Codes are
API: tests and fixtures assert on them, so a code is never renamed or
reused — retired codes stay reserved.

Catalog (see ``docs/static_analysis.md`` for the long form):

========  ========================================================
code      meaning
========  ========================================================
``P001``  destination write race: two unordered ops deliver
          overlapping regions to the same receiver
``P002``  incomplete coverage: part of a destination tile is never
          delivered by any op
``P003``  dangling dependency: an op dep references an unknown op id
``P004``  dependency-order violation or cycle among plan ops
``P005``  sender inconsistency: an op's sender is not a source-mesh
          device or does not hold the region it sends
``P006``  re-rooting inconsistency: an op sends from a host the fault
          rewrite re-rooted its unit task away from, the schedule
          assigns a host holding no replica, or a fallback record
          names a host holding no replica
``P007``  schedule/plan mismatch: schedule order is not a
          permutation of its assignment, or an op's unit task is
          missing from the schedule
``P008``  malformed op: duplicate op ids, negative byte counts,
          region rank mismatch with the task tensor
``D001``  deadlock: cycle in the wait-for graph over op
          dependencies and schedule host-gating
``D002``  deadlock: cycle in the wait-for graph implied by a
          pipeline schedule's stage orders and channel acquisitions
``S001``  pipeline stage exceeds its memory capacity at the
          schedule's peak in-flight activation count
``S002``  malformed stage order: a backward precedes its forward,
          or task counts do not match the micro-batch count
``M001``  static peak-buffer bound exceeds the cluster's
          ``memory_budget`` on at least one host
``M002``  unbounded or unattributable transient buffer: an op's byte
          count is not finite, or its deliveries land on hosts the
          schedule's serialization order says nothing about
``M003``  memory budget infeasible: every candidate strategy's static
          peak-buffer bound exceeds the budget
``L001``  wall-clock time call in deterministic code
``L002``  unseeded random-number generation
``L003``  iteration over an unordered set with order-dependent
          effects
``L004``  raw ``itemsize`` byte math outside the sizeof/buffer
          accounting helpers (``core/tensor.py``, ``core/buffers.py``)
``F001``  re-root into the same failure domain: a fallback record
          lands the sender on a host sharing a failure domain with
          the host it replaced while an out-of-domain replica exists
``F002``  buddy checkpoint replica shares a failure domain with its
          primary while an out-of-domain mesh exists
``F003``  scheduled sender host sits inside a failure domain that is
          down at plan time while an out-of-domain replica exists
``T001``  multicast op names a switch the cluster topology does not
          define
``T002``  multicast endpoints outside the claimed switch's span: the
          sender or a receiver sits on a host the switch does not
          reach
``T003``  unroutable op: data moves between hosts the topology has
          no path for (e.g. across disconnected islands)
========  ========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "CATALOG",
]


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings reject the plan."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: one-line summaries keyed by stable code (kept in sync with the module
#: docstring and docs/static_analysis.md)
CATALOG: dict[str, str] = {
    "P001": "destination write race (unordered overlapping deliveries)",
    "P002": "incomplete coverage (destination slice never delivered)",
    "P003": "dangling dependency (unknown op id)",
    "P004": "dependency-order violation or cycle",
    "P005": "sender does not hold the region it sends",
    "P006": "re-rooting inconsistency (dead sender host or bad fallback)",
    "P007": "schedule/plan mismatch",
    "P008": "malformed op",
    "D001": "wait-for cycle over op deps and schedule gating",
    "D002": "wait-for cycle in pipeline schedule",
    "S001": "stage memory capacity exceeded at peak in-flight count",
    "S002": "malformed stage task order",
    "M001": "static peak-buffer bound exceeds memory_budget",
    "M002": "unbounded or unattributable transient buffer",
    "M003": "memory budget infeasible for every candidate strategy",
    "L001": "wall-clock time call in deterministic code",
    "L002": "unseeded random-number generation",
    "L003": "order-dependent iteration over an unordered set",
    "L004": "raw itemsize byte math outside the sizeof helpers",
    "F001": "re-root lands inside the replaced host's failure domain",
    "F002": "buddy checkpoint shares a failure domain with its primary",
    "F003": "scheduled sender sits in a failed domain at plan time",
    "T001": "multicast names a switch the topology does not define",
    "T002": "multicast endpoint outside the claimed switch's span",
    "T003": "op routed between hosts with no topology path",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analyzer."""

    code: str
    severity: Severity
    message: str
    #: plan op ids the finding anchors to (plan analyses)
    op_ids: tuple[int, ...] = ()
    #: unit-task ids involved (plan analyses)
    task_ids: tuple[int, ...] = ()
    #: source location (lint analyses): path and 1-based line
    file: Optional[str] = None
    line: Optional[int] = None
    #: witness trace for deadlock findings: the cycle, node by node
    witness: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.code not in CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def format(self) -> str:
        loc = f"{self.file}:{self.line}: " if self.file is not None else ""
        anchors = ""
        if self.op_ids:
            anchors = f" [op {', '.join(str(i) for i in self.op_ids)}]"
        text = f"{loc}{self.code} {self.severity}: {self.message}{anchors}"
        if self.witness:
            text += "\n    witness: " + " -> ".join(self.witness)
        return text

    def __str__(self) -> str:
        return self.format()


@dataclass
class AnalysisReport:
    """The outcome of one analysis run: a list of diagnostics."""

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        severity: Severity = Severity.ERROR,
        **kwargs: object,
    ) -> Diagnostic:
        diag = Diagnostic(code=code, severity=severity, message=message, **kwargs)  # type: ignore[arg-type]
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def format(self) -> str:
        head = self.subject or "analysis"
        if not self.diagnostics:
            return f"{head}: clean"
        lines = [
            f"{head}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend("  " + d.format() for d in self.diagnostics)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AnalysisReport({self.subject!r}, {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s))"
        )
