"""Static verification of :class:`~repro.core.plan.CommPlan` objects.

:func:`check_plan` proves properties of a compiled plan *without running
it* and returns an :class:`~repro.analysis.diagnostics.AnalysisReport`
instead of raising on the first problem.  It subsumes the original
coverage validator (:func:`repro.core.validate.verify_plan_coverage` is
now a thin raising wrapper over it) and adds the checks that only became
possible once plans carried a schedule and fallback records:

* **write races** (``P001``): two ops delivering overlapping regions to
  the same receiver with no ordering between them — neither a transitive
  op dependency nor the schedule's host-gating order decides who writes
  last, so the destination buffer contents depend on network timing;
* **coverage** (``P002``): every destination device's tile must be fully
  covered by delivered regions (counting local reuse for intra-mesh
  plans);
* **dependency sanity** (``P003``/``P004``): deps must name real,
  earlier ops and be acyclic;
* **sender authority** (``P005``): an op's sender must be a source-mesh
  device holding the region it sends; all-gather groups must be fed by a
  preceding scatter of the same region;
* **re-rooting consistency** (``P006``): the schedule must assign each
  unit task a host that holds a replica, no emitted op may send from a
  host that :class:`~repro.compiler.passes.FaultRewritePass` re-rooted
  its unit task *away from*, and every fallback record must point at a
  host that actually holds a replica (the emitter is otherwise free to
  pick any replica host — greedy sender selection is load-, not
  schedule-, driven);
* **schedule/plan agreement** (``P007``) and **op well-formedness**
  (``P008``);
* **failure-domain safety** (``F001``/``F003``): when the cluster
  declares :class:`~repro.sim.cluster.FailureDomain` groups, no fallback
  may re-root a sender back into a failure domain of the host it
  replaced while an out-of-domain replica exists (F001), and — given the
  fault schedule the plan was compiled against — no scheduled sender may
  sit inside a domain that is already down at plan time while a live
  out-of-domain replica exists (F003).  The checkpoint-placement
  counterpart (F002) lives in :mod:`repro.analysis.domains`.

* **topology coherence** (``T001``/``T002``/``T003``): a multicast op
  must name a switch the cluster topology actually defines (T001) whose
  span covers the sender's and every receiver's host (T002), and no op
  may move data between hosts the topology has no route for (T003) —
  e.g. across disconnected islands.

The deadlock analysis over the same plan (``D001``) lives in
:mod:`repro.analysis.deadlock` and is folded into :func:`check_plan`'s
report.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.plan import (
    AllGatherOp,
    BroadcastOp,
    CommOp,
    CommPlan,
    MulticastOp,
    ScatterOp,
    SendOp,
)
from ..core.slices import Region, region_intersection, region_shape, region_size
from ..core.task import UnitCommTask
from ..sim.faults import FaultSchedule
from .deadlock import check_plan_deadlock, schedule_gating_preds
from .diagnostics import AnalysisReport, Severity

__all__ = ["check_plan", "Delivery"]


class Delivery:
    """One region an op places on one receiver (a potential write)."""

    __slots__ = ("op_id", "task_id", "receiver", "region")

    def __init__(self, op_id: int, task_id: int, receiver: int, region: Region):
        self.op_id = op_id
        self.task_id = task_id
        self.receiver = receiver
        self.region = region


def _op_sender(op: CommOp) -> Optional[int]:
    if isinstance(op, (SendOp, BroadcastOp, MulticastOp, ScatterOp)):
        return op.sender
    return None


def _check_structure(plan: CommPlan, report: AnalysisReport) -> None:
    rank = len(plan.task.shape)
    seen_ids: set[int] = set()
    for pos, op in enumerate(plan.ops):
        if op.op_id in seen_ids:
            report.add(
                "P008",
                f"duplicate op id {op.op_id} (list position {pos})",
                op_ids=(op.op_id,),
            )
        seen_ids.add(op.op_id)
        if op.nbytes < 0:
            report.add(
                "P008",
                f"op {op.op_id}: negative byte count {op.nbytes}",
                op_ids=(op.op_id,),
            )
        if len(op.region) != rank:
            report.add(
                "P008",
                f"op {op.op_id}: region rank {len(op.region)} does not match "
                f"tensor rank {rank}",
                op_ids=(op.op_id,),
            )


def _check_deps(plan: CommPlan, report: AnalysisReport) -> None:
    known = {op.op_id for op in plan.ops}
    for op in plan.ops:
        for dep in op.deps:
            if dep not in known:
                report.add(
                    "P003",
                    f"op {op.op_id}: dependency {dep} references unknown op",
                    op_ids=(op.op_id,),
                )
            elif dep >= op.op_id:
                report.add(
                    "P004",
                    f"op {op.op_id}: dependency {dep} does not precede it",
                    op_ids=(op.op_id, dep),
                )
    # Cycle detection over the dep graph (op ids may be arbitrary in
    # hand-built plans, so "dep < op_id" above does not already prove
    # acyclicity — and we want the cycle itself as a witness).
    deps_of = {op.op_id: tuple(d for d in op.deps if d in known) for op in plan.ops}
    color: dict[int, int] = {}  # 0/absent=white, 1=on stack, 2=done
    stack: list[int] = []

    def visit(start: int) -> Optional[list[int]]:
        todo: list[tuple[int, int]] = [(start, 0)]
        while todo:
            node, i = todo.pop()
            if i == 0:
                if color.get(node) == 2:
                    continue
                color[node] = 1
                stack.append(node)
            children = deps_of.get(node, ())
            if i < len(children):
                todo.append((node, i + 1))
                child = children[i]
                if color.get(child) == 1:
                    cut = stack.index(child)
                    return stack[cut:] + [child]
                if color.get(child) != 2:
                    todo.append((child, 0))
            else:
                color[node] = 2
                stack.pop()
        return None

    for op in plan.ops:
        if color.get(op.op_id) is None:
            cycle = visit(op.op_id)
            if cycle is not None:
                report.add(
                    "P004",
                    "dependency cycle among ops "
                    + " -> ".join(str(i) for i in cycle),
                    op_ids=tuple(dict.fromkeys(cycle)),
                    witness=tuple(f"op{i}" for i in cycle),
                )
                return  # one witness is enough; deeper cycles repeat it


def _check_sender_holds(plan: CommPlan, op: CommOp, report: AnalysisReport) -> bool:
    sender = _op_sender(op)
    if sender is None:
        return True
    task = plan.task
    if sender not in task.src_mesh.devices:
        report.add(
            "P005",
            f"op {op.op_id}: sender {sender} is not a source-mesh device",
            op_ids=(op.op_id,),
        )
        return False
    holder = task.src_grid.device_region(sender)
    if len(op.region) != len(holder):
        return False  # rank mismatch already reported as P008
    if region_intersection(holder, op.region) != op.region:
        report.add(
            "P005",
            f"op {op.op_id}: sender {sender} holds {holder}, not {op.region}",
            op_ids=(op.op_id,),
        )
        return False
    return True


def _collect_deliveries(
    plan: CommPlan, report: AnalysisReport
) -> tuple[list[Delivery], dict[int, list[Region]]]:
    """Walk ops in list order; return write records and coverage regions.

    Scatter ops place flat (non-box) parts, so they feed the sender-
    authority and race analyses via their full region but are excluded
    from coverage (their matching all-gather delivers the whole region).
    Mirrors the op semantics in :mod:`repro.core.data`.
    """
    task = plan.task
    dst = set(task.dst_mesh.devices)
    deliveries: list[Delivery] = []
    coverage: dict[int, list[Region]] = {d: [] for d in task.dst_mesh.devices}
    scattered: dict[tuple[int, Region], set[int]] = {}

    for op in plan.ops:
        ok = _check_sender_holds(plan, op, report)
        if isinstance(op, SendOp):
            if op.receiver in dst:
                deliveries.append(
                    Delivery(op.op_id, op.unit_task_id, op.receiver, op.region)
                )
                if ok:
                    coverage[op.receiver].append(op.region)
        elif isinstance(op, (BroadcastOp, MulticastOp)):
            for r in op.receivers:
                if r in dst:
                    deliveries.append(
                        Delivery(op.op_id, op.unit_task_id, r, op.region)
                    )
                    if ok:
                        coverage[r].append(op.region)
        elif isinstance(op, ScatterOp):
            for r in op.receivers:
                scattered.setdefault((op.op_id, op.region), set()).add(r)
                if r in dst:
                    deliveries.append(
                        Delivery(op.op_id, op.unit_task_id, r, op.region)
                    )
        elif isinstance(op, AllGatherOp):
            feeders = [
                devs
                for (dep_id, region), devs in scattered.items()
                if region == op.region and dep_id in op.deps
            ]
            fed: set[int] = set().union(*feeders) if feeders else set()
            if not feeders or not set(op.devices) <= fed:
                report.add(
                    "P005",
                    f"op {op.op_id}: all-gather group not fully fed by a "
                    "preceding scatter of the same region",
                    op_ids=(op.op_id,),
                )
            for r in op.devices:
                if r in dst:
                    deliveries.append(
                        Delivery(op.op_id, op.unit_task_id, r, op.region)
                    )
                    coverage[r].append(op.region)
        else:
            report.add(
                "P008",
                f"op {op.op_id}: unknown op type {type(op).__name__}",
                op_ids=(op.op_id,),
            )
    return deliveries, coverage


def _check_coverage(
    plan: CommPlan, coverage: dict[int, list[Region]], report: AnalysisReport
) -> None:
    task = plan.task
    intra = set(task.src_mesh.devices) & set(task.dst_mesh.devices)
    for dev in task.dst_mesh.devices:
        want = task.dst_grid.device_region(dev)
        got = np.zeros(region_shape(want), dtype=bool)
        regions = list(coverage[dev])
        if dev in intra:
            regions.append(task.src_grid.device_region(dev))
        for region in regions:
            if len(region) != len(want):
                continue  # rank mismatch already reported as P008
            inter = region_intersection(region, want)
            if inter is None:
                continue
            sl = tuple(
                slice(i0 - w0, i1 - w0) for (i0, i1), (w0, _) in zip(inter, want)
            )
            got[sl] = True
        if not got.all():
            missing = int(region_size(want) - got.sum())
            report.add(
                "P002",
                f"device {dev}: {missing} of {region_size(want)} elements of "
                f"tile {want} are never delivered",
            )


class _OrderOracle:
    """Decides whether one op is guaranteed to precede another.

    Two sources of ordering: transitive op dependencies, and the
    schedule's host-gating (the executor releases a unit task only after
    every earlier-ordered task sharing one of its hosts finished — so
    task-level gating orders *all* ops of the two tasks).
    """

    def __init__(self, plan: CommPlan, unit_tasks: list[UnitCommTask]) -> None:
        known = {op.op_id for op in plan.ops}
        self._deps_of = {
            op.op_id: tuple(d for d in op.deps if d in known) for op in plan.ops
        }
        self._dep_ancestors: dict[int, frozenset[int]] = {}
        self._task_of = {op.op_id: op.unit_task_id for op in plan.ops}
        self._task_ancestors: dict[int, frozenset[int]] = {}
        preds = (
            schedule_gating_preds(plan, unit_tasks)
            if plan.schedule is not None
            else {}
        )
        self._task_preds: dict[int, set[int]] = preds

    def _ancestors(
        self,
        node: int,
        edges: "dict[int, tuple[int, ...]] | dict[int, set[int]]",
        memo: dict[int, frozenset[int]],
    ) -> frozenset[int]:
        found = memo.get(node)
        if found is not None:
            return found
        memo[node] = frozenset()  # cycle guard; cycles reported elsewhere
        out: set[int] = set()
        for p in edges.get(node, ()):
            out.add(p)
            out |= self._ancestors(p, edges, memo)
        memo[node] = frozenset(out)
        return memo[node]

    def ordered(self, a: "Delivery", b: "Delivery") -> bool:
        """True when the plan guarantees a and b never write concurrently."""
        if a.op_id == b.op_id:
            return True
        if a.op_id in self._ancestors(b.op_id, self._deps_of, self._dep_ancestors):
            return True
        if b.op_id in self._ancestors(a.op_id, self._deps_of, self._dep_ancestors):
            return True
        ta, tb = a.task_id, b.task_id
        if ta == tb or ta == -1 or tb == -1 or not self._task_preds:
            return False
        if ta in self._ancestors(tb, self._task_preds, self._task_ancestors):
            return True
        if tb in self._ancestors(ta, self._task_preds, self._task_ancestors):
            return True
        return False


def _check_races(
    plan: CommPlan,
    deliveries: list[Delivery],
    unit_tasks: list[UnitCommTask],
    report: AnalysisReport,
) -> None:
    oracle = _OrderOracle(plan, unit_tasks)
    by_receiver: dict[int, list[Delivery]] = {}
    for d in deliveries:
        by_receiver.setdefault(d.receiver, []).append(d)
    reported: set[tuple[int, int]] = set()
    for recv in sorted(by_receiver):
        writes = by_receiver[recv]
        for i in range(len(writes)):
            for j in range(i + 1, len(writes)):
                a, b = writes[i], writes[j]
                if a.op_id == b.op_id:
                    continue
                pair = (min(a.op_id, b.op_id), max(a.op_id, b.op_id))
                if pair in reported:
                    continue
                overlap = (
                    region_intersection(a.region, b.region)
                    if len(a.region) == len(b.region)
                    else None
                )
                if overlap is None:
                    continue
                if oracle.ordered(a, b):
                    continue
                reported.add(pair)
                report.add(
                    "P001",
                    f"ops {a.op_id} and {b.op_id} both write {overlap} on "
                    f"device {recv} with no ordering between them",
                    op_ids=pair,
                    task_ids=tuple(
                        sorted({t for t in (a.task_id, b.task_id) if t != -1})
                    ),
                )


def _check_schedule_consistency(
    plan: CommPlan, unit_tasks: list[UnitCommTask], report: AnalysisReport
) -> None:
    task = plan.task
    ut_by_id = {ut.task_id: ut for ut in unit_tasks}
    schedule = plan.schedule
    #: hosts each unit task was re-rooted away from (declared dead)
    rerooted_from: dict[int, set[int]] = {}
    for fb in plan.fallbacks:
        rerooted_from.setdefault(fb.unit_task_id, set()).add(fb.from_host)

    if schedule is not None:
        if sorted(schedule.order) != sorted(schedule.assignment):
            report.add(
                "P007",
                "schedule order is not a permutation of its assignment keys",
            )
        for tid in sorted(schedule.assignment):
            ut = ut_by_id.get(tid)
            if ut is None:
                report.add(
                    "P007",
                    f"schedule assigns unknown unit task {tid}",
                    task_ids=(tid,),
                )
                continue
            host = schedule.assignment[tid]
            if ut.receivers and host not in task.sender_hosts(ut):
                report.add(
                    "P006",
                    f"unit task {tid}: assigned sender host {host} holds no "
                    f"replica (options: {sorted(task.sender_hosts(ut))})",
                    task_ids=(tid,),
                )

    for op in plan.ops:
        tid = op.unit_task_id
        if tid == -1:
            continue
        if tid not in ut_by_id:
            report.add(
                "P007",
                f"op {op.op_id}: unit task {tid} does not exist at "
                f"{plan.granularity!r} granularity",
                op_ids=(op.op_id,),
                task_ids=(tid,),
            )
            continue
        sender = _op_sender(op)
        if sender is not None and sender in task.src_mesh.devices:
            host = task.cluster.host_of(sender)
            if host in rerooted_from.get(tid, ()):
                report.add(
                    "P006",
                    f"op {op.op_id}: sends from host {host}, which the "
                    f"fault rewrite re-rooted unit task {tid} away from",
                    op_ids=(op.op_id,),
                    task_ids=(tid,),
                )
        if schedule is not None and tid not in schedule.assignment:
            report.add(
                "P007",
                f"op {op.op_id}: unit task {tid} missing from the schedule",
                op_ids=(op.op_id,),
                task_ids=(tid,),
            )

    # Fallback records must describe rewrites that are actually possible.
    for fb in plan.fallbacks:
        ut = ut_by_id.get(fb.unit_task_id)
        if ut is None:
            report.add(
                "P006",
                f"fallback record names unknown unit task {fb.unit_task_id}",
                task_ids=(fb.unit_task_id,),
            )
            continue
        if fb.to_host == fb.from_host:
            report.add(
                "P006",
                f"unit task {fb.unit_task_id}: fallback re-roots host "
                f"{fb.from_host} onto itself",
                task_ids=(fb.unit_task_id,),
            )
        if fb.to_host not in task.sender_hosts(ut):
            report.add(
                "P006",
                f"unit task {fb.unit_task_id}: fallback re-roots onto host "
                f"{fb.to_host}, which holds no replica of {ut.region}",
                task_ids=(fb.unit_task_id,),
            )


def _check_failure_domains(
    plan: CommPlan,
    unit_tasks: list[UnitCommTask],
    faults: Optional[FaultSchedule],
    report: AnalysisReport,
) -> None:
    """F001/F003: re-roots and schedules must respect failure domains.

    F001 (static): a fallback record whose ``to_host`` shares a failure
    domain with the ``from_host`` it replaced, while a replica host
    outside every such domain exists (and, when ``faults`` is known, is
    alive at plan time) — the re-root stayed inside the blast radius it
    was escaping.

    F003 (needs ``faults``): a scheduled sender host sitting inside a
    failure domain that is already down at plan time while a live
    replica outside any failed domain exists.  Both demote to WARNING
    when no better option existed — the plan is risky but not wrong.
    """
    task = plan.task
    spec = task.cluster.spec
    if not spec.effective_failure_domains:
        return
    ut_by_id = {ut.task_id: ut for ut in unit_tasks}

    def alive(h: int) -> bool:
        return faults is None or not faults.host_down(h, 0.0)

    for fb in plan.fallbacks:
        ut = ut_by_id.get(fb.unit_task_id)
        if ut is None:
            continue  # dangling record already reported as P006
        if not spec.shares_domain(fb.from_host, fb.to_host):
            continue
        domains = [
            d.name
            for d in spec.domains_of_host(fb.from_host)
            if fb.to_host in d.hosts
        ]
        alternatives = sorted(
            h
            for h in task.sender_hosts(ut)
            if h != fb.from_host
            and not spec.shares_domain(fb.from_host, h)
            and alive(h)
        )
        report.add(
            "F001",
            f"unit task {fb.unit_task_id}: re-rooted from host "
            f"{fb.from_host} onto host {fb.to_host}, inside the same "
            f"failure domain(s) {domains}"
            + (
                f" while out-of-domain replica host(s) {alternatives} exist"
                if alternatives
                else " (no out-of-domain replica was available)"
            ),
            severity=Severity.ERROR if alternatives else Severity.WARNING,
            task_ids=(fb.unit_task_id,),
        )

    if faults is None or plan.schedule is None:
        return
    for tid in sorted(plan.schedule.assignment):
        ut = ut_by_id.get(tid)
        if ut is None or not ut.receivers:
            continue
        host = plan.schedule.assignment[tid]
        domain = faults.failed_domain_of(host, 0.0)
        if domain is None:
            continue
        alternatives = sorted(
            h
            for h in task.sender_hosts(ut)
            if h != host
            and not faults.host_down(h, 0.0)
            and faults.failed_domain_of(h, 0.0) is None
        )
        report.add(
            "F003",
            f"unit task {tid}: scheduled sender host {host} is inside "
            f"failure domain {domain!r}, down at plan time"
            + (
                f"; live out-of-domain replica host(s) {alternatives} exist"
                if alternatives
                else " (no live out-of-domain replica exists)"
            ),
            severity=Severity.ERROR if alternatives else Severity.WARNING,
            task_ids=(tid,),
        )


def _check_topology(plan: CommPlan, report: AnalysisReport) -> None:
    """T001/T002/T003: the plan must be routable on the cluster topology.

    T001: a multicast op names a switch the topology does not define.
    T002: a multicast op's sender or receivers sit on hosts outside the
    claimed switch's span — the switch physically cannot replicate to
    them.  T003: any op moves data between a host pair the topology has
    no route for (e.g. across disconnected islands) — the flow simulator
    would raise at execution time; this catches it statically.
    """
    cluster = plan.task.cluster
    topo = cluster.topo
    topo_name = topo.topology.name
    switches = {s.name: s for s in topo.switches}

    def host(dev: int) -> Optional[int]:
        # Out-of-range devices are already reported (P005/P008).
        if 0 <= dev < cluster.n_devices:
            return cluster.host_of(dev)
        return None

    for op in plan.ops:
        if isinstance(op, MulticastOp):
            sw = switches.get(op.switch)
            if sw is None:
                report.add(
                    "T001",
                    f"op {op.op_id}: multicast names switch {op.switch!r}, "
                    f"which topology {topo_name!r} does not define "
                    f"(available: {sorted(switches) or 'none'})",
                    op_ids=(op.op_id,),
                )
            else:
                hosts = {
                    h
                    for d in (op.sender, *op.receivers)
                    if (h := host(d)) is not None
                }
                outside = sorted(hosts - set(sw.hosts))
                if outside:
                    report.add(
                        "T002",
                        f"op {op.op_id}: multicast claims switch "
                        f"{op.switch!r} (hosts {sorted(sw.hosts)}), but "
                        f"endpoint host(s) {outside} are outside its span",
                        op_ids=(op.op_id,),
                    )
        sender = _op_sender(op)
        if sender is not None:
            sh = host(sender)
            if isinstance(op, SendOp):
                dsts = (op.receiver,)
            elif isinstance(op, (BroadcastOp, MulticastOp, ScatterOp)):
                dsts = op.receivers
            else:
                dsts = ()
            if sh is not None:
                unroutable = sorted(
                    {
                        rh
                        for d in dsts
                        if (rh := host(d)) is not None
                        and rh != sh
                        and not topo.has_route(sh, rh)
                    }
                )
                if unroutable:
                    report.add(
                        "T003",
                        f"op {op.op_id}: routed from host {sh} to host(s) "
                        f"{unroutable}, but topology {topo_name!r} has no "
                        "path between them",
                        op_ids=(op.op_id,),
                    )
        elif isinstance(op, AllGatherOp):
            hosts_ag = sorted(
                {h for d in op.devices if (h := host(d)) is not None}
            )
            bad_pairs = [
                (a, b)
                for i, a in enumerate(hosts_ag)
                for b in hosts_ag[i + 1 :]
                if not topo.has_route(a, b)
            ]
            if bad_pairs:
                report.add(
                    "T003",
                    f"op {op.op_id}: all-gather group spans host pair(s) "
                    f"{bad_pairs} with no topology path between them",
                    op_ids=(op.op_id,),
                )


def check_plan(
    plan: CommPlan,
    deadlock: bool = True,
    faults: Optional[FaultSchedule] = None,
    memory_budget: Optional[float] = None,
) -> AnalysisReport:
    """Statically analyze ``plan``; never raises on plan defects.

    Returns an :class:`AnalysisReport` whose ``ok`` is True iff the plan
    is provably well-formed: no write races, full coverage, sane deps,
    authorized senders, schedule-consistent (post-re-rooting) emission,
    no wait-for cycle, failure-domain-safe re-roots, and transient
    buffers within budget.  ``faults`` is the schedule the plan was
    compiled against (if any): it sharpens the F001 alternative-host
    analysis and enables F003.  ``memory_budget`` (bytes per host)
    overrides the cluster spec's own ``memory_budget`` for the M001
    peak-buffer check; with neither set only M002 can fire.  Plans
    flagged ``data_complete=False`` (signalling baselines) get
    structural checks only.
    """
    # Imported here, not at module scope: memory_analysis shares this
    # package but is also imported by the compiler's select pass, and a
    # top-level cross-import would make the package import order matter.
    from .memory_analysis import check_plan_memory

    report = AnalysisReport(subject=f"plan[{plan.strategy}]")
    _check_structure(plan, report)
    _check_deps(plan, report)

    unit_tasks = plan.task.unit_tasks(plan.granularity)
    _check_schedule_consistency(plan, unit_tasks, report)
    _check_failure_domains(plan, unit_tasks, faults, report)
    _check_topology(plan, report)
    check_plan_memory(
        plan, report, unit_tasks=unit_tasks, memory_budget=memory_budget
    )

    if plan.data_complete:
        deliveries, coverage = _collect_deliveries(plan, report)
        _check_races(plan, deliveries, unit_tasks, report)
        _check_coverage(plan, coverage, report)
    else:
        report.add(
            "P008",
            f"strategy {plan.strategy!r} plans carry no data by design; "
            "coverage and race analyses skipped",
            severity=Severity.INFO,
        )

    if deadlock:
        report.extend(check_plan_deadlock(plan, unit_tasks))
    return report
