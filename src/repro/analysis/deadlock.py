"""Static deadlock analysis: wait-for graphs with minimal witness traces.

Two analyzers share one cycle finder:

* :func:`check_plan_deadlock` (``D001``) models how the timing
  interpreter (:func:`repro.core.executor.simulate_plan`) actually gates
  work: an op waits for its dependency ops, a unit task *finishes* when
  all its ops finish, and a unit task is *released* only once every
  earlier-ordered task sharing one of its hosts has finished (the
  executable form of the paper's Eq. 3 non-overlap constraint).  An op
  dependency pointing "against" the schedule's host-gating order closes
  a cycle in that wait-for graph — the plan would hang the executor at
  runtime; the analyzer reports the cycle before anything runs.

* :func:`check_stage_orders_deadlock` (``D002``) models the pipeline
  executors on the runtime kernel: each stage is a serial resource
  (its ordered task list is executed strictly in sequence, like a
  capacity-1 :class:`~repro.runtime.resources.Resource`), and each
  cross-stage activation/gradient message is an acquisition of the
  directed :class:`~repro.runtime.resources.SerialChannel` between the
  stage pair.  A compute task therefore waits on (a) its stage
  predecessor and (b) the arrival of its cross-stage inputs; a cycle
  means the schedule deadlocks regardless of timings.

Witnesses are the cycle itself, node by node, trimmed to the strongly
connected core — small enough to paste into a bug report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional, Sequence, TypeVar

from .diagnostics import AnalysisReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import CommPlan
    from ..core.task import UnitCommTask
    from ..pipeline.schedules import Task
    from ..pipeline.stage import PipelineJob

__all__ = [
    "find_cycle",
    "schedule_gating_preds",
    "check_plan_deadlock",
    "check_stage_orders_deadlock",
]

N = TypeVar("N", bound=Hashable)


def find_cycle(edges: dict[N, Sequence[N]]) -> Optional[list[N]]:
    """First cycle of a "waits-on" graph, as ``[n0, n1, ..., n0]``.

    ``edges[x]`` lists the nodes ``x`` waits on.  Deterministic: nodes
    are visited in the mapping's insertion order, successors in list
    order, so the same graph always yields the same witness.
    """
    color: dict[N, int] = {}  # 1 = on stack, 2 = done
    stack: list[N] = []

    def visit(start: N) -> Optional[list[N]]:
        todo: list[tuple[N, int]] = [(start, 0)]
        while todo:
            node, i = todo.pop()
            if i == 0:
                if color.get(node) == 2:
                    continue
                color[node] = 1
                stack.append(node)
            children = edges.get(node, ())
            if i < len(children):
                todo.append((node, i + 1))
                child = children[i]
                if color.get(child) == 1:
                    cut = stack.index(child)
                    return stack[cut:] + [child]
                if color.get(child) != 2:
                    todo.append((child, 0))
            else:
                color[node] = 2
                stack.pop()
        return None

    for node in edges:
        if color.get(node) is None:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def schedule_gating_preds(
    plan: "CommPlan", unit_tasks: "list[UnitCommTask]"
) -> dict[int, set[int]]:
    """Host-gating predecessors per unit task, as the executor builds them.

    Task ``t`` may only start once every earlier-ordered task sharing
    one of its hosts (assigned sender host or any receiver host) has
    finished.  Mirrors :func:`repro.core.executor.simulate_plan`.
    """
    schedule = plan.schedule
    task_ops = plan.ops_by_task()
    preds: dict[int, set[int]] = {tid: set() for tid in task_ops}
    if schedule is None:
        return preds
    ut_by_id = {ut.task_id: ut for ut in unit_tasks}
    last_on_host: dict[int, int] = {}
    for tid in schedule.order:
        if tid not in task_ops or tid not in ut_by_id:
            continue
        ut = ut_by_id[tid]
        hosts = set(plan.task.receiver_hosts(ut))
        if tid in schedule.assignment:
            hosts.add(schedule.assignment[tid])
        for h in sorted(hosts):
            prev = last_on_host.get(h)
            if prev is not None and prev != tid:
                preds[tid].add(prev)
            last_on_host[h] = tid
    return preds


def check_plan_deadlock(
    plan: "CommPlan", unit_tasks: "Optional[list[UnitCommTask]]" = None
) -> AnalysisReport:
    """Detect wait-for cycles between op deps and schedule host-gating.

    Nodes: ``op<N>`` (the op completing), ``task<T>`` (all of T's ops
    complete), ``release task<T>`` (T's gating predecessors complete).
    Reports ``D001`` with the cycle as a witness.  Cycles formed by op
    dependencies alone are the plan checker's ``P004``; this analyzer
    still reports them (they hang the executor all the same) unless the
    graph has no gating edges at all.
    """
    report = AnalysisReport(subject=f"deadlock[{plan.strategy}]")
    if unit_tasks is None:
        unit_tasks = plan.task.unit_tasks(plan.granularity)
    known = {op.op_id for op in plan.ops}
    task_ops = plan.ops_by_task()
    preds = schedule_gating_preds(plan, unit_tasks)
    gated = plan.schedule is not None and any(preds.values())

    edges: dict[str, list[str]] = {}
    for op in plan.ops:
        waits = [f"op{d}" for d in op.deps if d in known]
        if gated and op.unit_task_id != -1 and op.unit_task_id in preds:
            waits.append(f"release task{op.unit_task_id}")
        edges[f"op{op.op_id}"] = waits
    if gated:
        for tid, ops in task_ops.items():
            if tid == -1:
                continue
            edges[f"task{tid}"] = [f"op{op.op_id}" for op in ops]
            edges[f"release task{tid}"] = [
                f"task{p}" for p in sorted(preds.get(tid, ()))
            ]

    cycle = find_cycle(edges)
    if cycle is None:
        return report
    only_deps = all(node.startswith("op") for node in cycle)
    if only_deps and not gated:
        # Pure dep cycle in an ungated plan: P004 already owns it.
        return report
    op_ids = tuple(
        dict.fromkeys(int(n[2:]) for n in cycle if n.startswith("op"))
    )
    task_ids = tuple(
        dict.fromkeys(
            int(n.rsplit("task", 1)[1]) for n in cycle if "task" in n
        )
    )
    report.add(
        "D001",
        "wait-for cycle: the executor would hang before completing "
        f"{len(op_ids)} op(s)",
        op_ids=op_ids,
        task_ids=task_ids,
        witness=tuple(cycle),
    )
    return report


def check_stage_orders_deadlock(
    orders: "list[list[Task]]",
    job: "Optional[PipelineJob]" = None,
) -> AnalysisReport:
    """Detect wait-for cycles in a pipeline schedule's stage orders.

    ``orders[s]`` is stage ``s``'s ordered compute-task list (see
    :func:`repro.pipeline.schedules.schedule_job`).  The wait-for graph:

    * serial stages — task ``k`` of a stage waits on task ``k-1``
      (capacity-1 stage resource);
    * forward channels — ``F(m)`` at stage ``d`` waits on ``F(m)`` at
      stage ``s`` for every comm edge ``s -> d`` (activation arrival;
      adjacent stages when ``job`` is None);
    * backward channels — the backward task of micro-batch ``m`` at
      stage ``s`` waits on the backward task at stage ``d`` for every
      edge ``s -> d`` (gradient arrival over the reverse channel).

    Reports ``D002`` with the cycle as a witness.
    """
    report = AnalysisReport(subject="pipeline-schedule")
    n_stages = len(orders)

    if job is not None:
        fwd_inputs = {
            s: sorted({e.src_stage for e in job.in_edges(s)}) for s in range(n_stages)
        }
        bwd_inputs = {
            s: sorted({e.dst_stage for e in job.out_edges(s)}) for s in range(n_stages)
        }
    else:
        fwd_inputs = {s: ([s - 1] if s > 0 else []) for s in range(n_stages)}
        bwd_inputs = {s: ([s + 1] if s < n_stages - 1 else []) for s in range(n_stages)}

    def fwd_node(stage: int, mb: int) -> Optional[str]:
        for t in orders[stage]:
            if t.kind == "F" and t.microbatch == mb:
                return f"S{stage}:F{mb}"
        return None

    def bwd_node(stage: int, mb: int) -> Optional[str]:
        # The activation-gradient producer: Bx when split, else B.
        for t in orders[stage]:
            if t.kind in ("B", "Bx") and t.microbatch == mb:
                return f"S{stage}:{t.kind}{mb}"
        return None

    edges: dict[str, list[str]] = {}
    for s, order in enumerate(orders):
        prev: Optional[str] = None
        for t in order:
            node = f"S{s}:{t.kind}{t.microbatch}"
            waits = edges.setdefault(node, [])
            if prev is not None:
                waits.append(prev)
            if t.kind == "F":
                for src in fwd_inputs[s]:
                    upstream = fwd_node(src, t.microbatch)
                    if upstream is not None:
                        waits.append(upstream)
            elif t.kind in ("B", "Bx"):
                for dst in bwd_inputs[s]:
                    downstream = bwd_node(dst, t.microbatch)
                    if downstream is not None:
                        waits.append(downstream)
            prev = node

    cycle = find_cycle(edges)
    if cycle is not None:
        stages = tuple(
            dict.fromkeys(int(n.split(":", 1)[0][1:]) for n in cycle)
        )
        report.add(
            "D002",
            "pipeline schedule deadlocks: stages "
            f"{', '.join(str(s) for s in stages)} wait on each other in a cycle",
            task_ids=stages,
            witness=tuple(cycle),
        )
    return report
