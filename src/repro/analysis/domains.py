"""Failure-domain placement checks for checkpoint replication (F002).

The plan-level domain checks (F001/F003) live in
:mod:`repro.analysis.plan_checker`; this module covers the one placement
decision made *outside* the compiler: where
:class:`~repro.recovery.checkpoint.CheckpointStore` puts each stage's
buddy replica.  Buddy replication only buys fail-stop survivability if
the buddy's hosts can't die together with the primary's — a buddy on
the same rack/PDU as its primary is a correlated single point of
failure, which is exactly what :class:`~repro.sim.cluster.FailureDomain`
declarations exist to rule out.

``F002`` fires when stage ``s``'s buddy mesh shares a failure domain
with its primary mesh while some *other* stage mesh is fully outside
every domain of the primary — an avoidable correlated placement is an
ERROR; with no domain-disjoint mesh available it demotes to WARNING
(the cluster is too small to do better, but the operator should know).
"""

from __future__ import annotations

from ..core.mesh import DeviceMesh
from ..sim.cluster import ClusterSpec
from .diagnostics import AnalysisReport, Severity

__all__ = ["check_checkpoint_domains", "meshes_share_domain"]


def meshes_share_domain(a: DeviceMesh, b: DeviceMesh, spec: ClusterSpec) -> bool:
    """True when any host of ``a`` shares a failure domain with one of ``b``."""
    return any(
        spec.shares_domain(ha, hb) for ha in a.hosts for hb in b.hosts
    )


def check_checkpoint_domains(
    primary_meshes: list[DeviceMesh],
    buddy_meshes: list[DeviceMesh],
    spec: ClusterSpec,
) -> AnalysisReport:
    """Prove buddy replicas live outside their primary's failure domains.

    ``buddy_meshes[s]`` is where stage ``s``'s replica was placed;
    candidates for "could have done better" are the other stage meshes
    (buddy placement is constrained to existing stage meshes — the
    store replicates onto peers, it does not invent new meshes).
    """
    report = AnalysisReport(subject="checkpoint-domains")
    if len(primary_meshes) != len(buddy_meshes):
        raise ValueError(
            f"mesh list length mismatch: {len(primary_meshes)} primaries, "
            f"{len(buddy_meshes)} buddies"
        )
    if not spec.failure_domains:
        return report
    for s, (primary, buddy) in enumerate(zip(primary_meshes, buddy_meshes)):
        if not meshes_share_domain(primary, buddy, spec):
            continue
        shared = sorted(
            {
                d.name
                for hp in primary.hosts
                for d in spec.domains_of_host(hp)
                if any(hb in d.hosts for hb in buddy.hosts)
            }
        )
        alternatives = sorted(
            k
            for k, m in enumerate(primary_meshes)
            if k != s
            and m.devices != primary.devices
            and not meshes_share_domain(primary, m, spec)
        )
        report.add(
            "F002",
            f"stage {s}: buddy checkpoint on hosts {sorted(buddy.hosts)} "
            f"shares failure domain(s) {shared} with its primary on hosts "
            f"{sorted(primary.hosts)}"
            + (
                f"; domain-disjoint stage mesh(es) {alternatives} exist"
                if alternatives
                else " (no domain-disjoint stage mesh exists)"
            ),
            severity=Severity.ERROR if alternatives else Severity.WARNING,
        )
    return report
