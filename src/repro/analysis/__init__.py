"""Static analysis: plan verification, deadlock detection, determinism lint.

The dynamic checkers (:mod:`repro.core.verify_data`, the runtime kernel)
catch bad plans by executing them; this package proves properties
*before* execution:

* :func:`check_plan` — write races, coverage gaps, dependency sanity,
  sender authority, re-rooting consistency of a
  :class:`~repro.core.plan.CommPlan` (``P001``-``P008``), plus
  failure-domain safety of re-roots and schedules (``F001``/``F003``);
* :func:`check_checkpoint_domains` — buddy-checkpoint placement versus
  declared failure domains (``F002``);
* :func:`check_plan_deadlock` / :func:`check_stage_orders_deadlock` —
  wait-for cycles over schedule gating and kernel channel acquisitions
  (``D001``/``D002``);
* :func:`analyze_pipeline_schedule` — static in-flight activation
  bounds and structural checks of 1F1B-family schedules
  (``S001``/``S002``);
* :func:`static_host_bounds` / :func:`check_plan_memory` — abstract
  interpretation of per-host transient buffer bytes: a sound static
  upper bound on the simulated peak, checked against ``memory_budget``
  (``M001``-``M003``);
* :func:`lint_paths` — AST rules banning nondeterminism and raw byte
  math in the repo's own code (``L001``-``L004``).

Entry points: the compiler's ``validate`` pass, ``python -m repro
analyze`` and ``python -m repro lint``, and CI's lint-and-analyze job.
See ``docs/static_analysis.md`` for the diagnostic catalog.
"""

from .deadlock import (
    check_plan_deadlock,
    check_stage_orders_deadlock,
    find_cycle,
    schedule_gating_preds,
)
from .diagnostics import CATALOG, AnalysisReport, Diagnostic, Severity
from .domains import check_checkpoint_domains, meshes_share_domain
from .lint import lint_file, lint_paths, lint_source
from .loader import PlanFixture, load_plan_fixture, plan_from_dict
from .memory_analysis import MemoryAnalysis, check_plan_memory, static_host_bounds
from .plan_checker import check_plan
from .schedule_analysis import (
    analyze_pipeline_schedule,
    check_stage_orders,
    static_peak_inflight,
)

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "CATALOG",
    "check_plan",
    "check_checkpoint_domains",
    "meshes_share_domain",
    "check_plan_deadlock",
    "check_stage_orders",
    "check_stage_orders_deadlock",
    "find_cycle",
    "schedule_gating_preds",
    "analyze_pipeline_schedule",
    "static_peak_inflight",
    "MemoryAnalysis",
    "static_host_bounds",
    "check_plan_memory",
    "lint_source",
    "lint_file",
    "lint_paths",
    "PlanFixture",
    "load_plan_fixture",
    "plan_from_dict",
]
