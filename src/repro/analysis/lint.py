"""``repro-lint``: AST rules for the repo's own determinism invariants.

The simulators promise byte-identical traces for identical inputs; that
promise is easy to break with one careless call.  These rules ban the
three classic leaks in deterministic code:

``L001`` — wall-clock time (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``...): simulated time must come from the event loop.
``L002`` — unseeded randomness (module-level ``random.*`` calls,
    ``random.Random()`` / ``numpy.random.default_rng()`` with no seed,
    module-level ``numpy.random.*`` draws).
``L003`` — iterating a ``set``/``frozenset`` in a ``for`` loop or a
    list/dict/generator comprehension: CPython set order depends on hash
    values and insertion history, so any order-dependent effect in the
    body (scheduling, emission, accumulation into a list) becomes
    machine-dependent.  Wrap the set in ``sorted(...)`` instead.
``L004`` — raw ``itemsize`` byte math (``n * dtype.itemsize``) outside
    the sizeof helpers.  Every byte count the memory analyzer reasons
    about must flow through :func:`repro.core.tensor.nbytes_of` /
    :func:`repro.core.tensor.region_nbytes` (and the attribution in
    :mod:`repro.core.buffers`), or static bounds and runtime accounting
    can silently disagree.  Only those modules may multiply by
    ``itemsize`` directly.

A line (or the line above it) may carry an explicit waiver with a
reason, e.g.::

    t0 = time.perf_counter()  # repro-lint: allow[L001] instrumentation

Waivers are for code whose *output* provably does not depend on the
value (pass-timing telemetry, progress printing, wall-clock safety caps
documented as such) — never for anything that shapes a plan or a trace.

Run over a tree with :func:`lint_paths` or ``python -m repro lint src/``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

_ALLOW_RE = re.compile(r"repro-lint:\s*allow\[([A-Z0-9,\s]+)\]")

#: wall-clock call targets (resolved through import aliases)
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module attributes that are fine to call
_RANDOM_OK = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})

#: ``numpy.random`` constructors that are fine *when seeded*
_NP_RANDOM_CTORS = frozenset({"default_rng", "RandomState", "Generator", "SeedSequence"})

_SET_BUILTINS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: modules allowed to do raw ``* itemsize`` math (the sizeof helpers
#: themselves and the buffer-attribution map built on them)
_L004_ALLOWED_SUFFIXES = ("core/tensor.py", "core/buffers.py")


class _Scope:
    """One lexical scope's set-typed name approximation."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.other_names: set[str] = set()

    def mark(self, name: str, is_set: bool) -> None:
        if is_set:
            self.set_names.add(name)
            self.other_names.discard(name)
        else:
            self.other_names.add(name)
            self.set_names.discard(name)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Diagnostic] = []
        #: alias -> module dotted path (``import numpy as np``)
        self.module_alias: dict[str, str] = {}
        #: name -> full dotted path (``from time import monotonic``)
        self.from_alias: dict[str, str] = {}
        self.scopes: list[_Scope] = [_Scope()]

    # ------------------------------------------------------------------
    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                file=self.path,
                line=getattr(node, "lineno", None),
            )
        )

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_alias[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            base = node.module
            if base == "datetime":
                # ``from datetime import datetime`` -> datetime.datetime
                for alias in node.names:
                    self.from_alias[alias.asname or alias.name] = (
                        f"datetime.{alias.name}"
                    )
            else:
                for alias in node.names:
                    self.from_alias[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _dotted(self, node: ast.expr) -> Optional[str]:
        """Resolve ``np.random.rand`` -> ``numpy.random.rand`` via imports."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.module_alias:
            base = self.module_alias[root]
        elif root in self.from_alias:
            base = self.from_alias[root]
        else:
            return None
        return ".".join([base] + parts[::-1])

    # ------------------------------------------------------------------
    # L001 / L002: calls
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            if dotted in _WALL_CLOCK:
                self._emit(
                    "L001",
                    f"wall-clock call {dotted}(); deterministic code must "
                    "take time from the event loop",
                    node,
                )
            else:
                self._check_random(dotted, node)
        self.generic_visit(node)

    def _check_random(self, dotted: str, node: ast.Call) -> None:
        if dotted.startswith("random."):
            fn = dotted.split(".", 1)[1]
            if "." in fn:
                return
            if fn == "Random":
                if not node.args and not node.keywords:
                    self._emit(
                        "L002", "random.Random() without a seed", node
                    )
            elif fn not in _RANDOM_OK:
                self._emit(
                    "L002",
                    f"module-level {dotted}() draws from the global "
                    "(unseeded) RNG; use a seeded random.Random instance",
                    node,
                )
        elif dotted.startswith("numpy.random."):
            fn = dotted.split(".", 2)[2]
            if "." in fn:
                return
            if fn in _NP_RANDOM_CTORS:
                if not node.args and not node.keywords:
                    self._emit(
                        "L002", f"numpy.random.{fn}() without a seed", node
                    )
            else:
                self._emit(
                    "L002",
                    f"module-level numpy.random.{fn}() draws from the global "
                    "RNG; use a seeded numpy.random.default_rng(seed)",
                    node,
                )

    # ------------------------------------------------------------------
    # L003: set iteration
    # ------------------------------------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            for scope in reversed(self.scopes):
                if node.id in scope.set_names:
                    return True
                if node.id in scope.other_names:
                    return False
        return False

    def _track_assign(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.scopes[-1].mark(target.id, self._is_set_expr(value))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track_assign(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``hosts |= {...}`` keeps (or makes) the name a set
        if isinstance(node.target, ast.Name) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            if self._is_set_expr(node.value):
                self.scopes[-1].mark(node.target.id, True)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr, where: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._emit(
                "L003",
                "iteration over an unordered set; wrap it in sorted(...) so "
                "order-dependent effects stay deterministic",
                where,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # L004: raw itemsize byte math
    # ------------------------------------------------------------------
    def _is_itemsize(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "itemsize":
            return True
        return isinstance(node, ast.Name) and node.id == "itemsize"

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Mult)
            and (self._is_itemsize(node.left) or self._is_itemsize(node.right))
            and not self.path.replace("\\", "/").endswith(_L004_ALLOWED_SUFFIXES)
        ):
            self._emit(
                "L004",
                "raw itemsize byte math; use repro.core.tensor.nbytes_of / "
                "region_nbytes so the memory analyzer and runtime "
                "accounting agree on every byte count",
                node,
            )
        self.generic_visit(node)

    def _visit_comprehension(
        self, node: Union[ast.ListComp, ast.GeneratorExp, ast.DictComp]
    ) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    # set comprehensions rebuild a set: order cannot leak

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    ) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function


def _waived(diag: Diagnostic, lines: Sequence[str]) -> bool:
    if diag.line is None:
        return False
    for lineno in (diag.line, diag.line - 1):
        if 1 <= lineno <= len(lines):
            m = _ALLOW_RE.search(lines[lineno - 1])
            if m and diag.code in {c.strip() for c in m.group(1).split(",")}:
                return True
    return False


def lint_source(
    source: str, path: str = "<string>", codes: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    """Lint one module's source; returns unwaived findings in line order."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path)
    linter.visit(tree)
    lines = source.splitlines()
    wanted = set(codes) if codes is not None else None
    out = [
        d
        for d in linter.findings
        if not _waived(d, lines) and (wanted is None or d.code in wanted)
    ]
    out.sort(key=lambda d: (d.line or 0, d.code, d.message))
    return out


def lint_file(
    path: Union[str, Path], codes: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p), codes=codes)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(
                f for f in p.rglob("*.py") if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: Sequence[Union[str, Path]], codes: Optional[Iterable[str]] = None
) -> AnalysisReport:
    """Lint every ``.py`` file under ``paths``; one combined report."""
    report = AnalysisReport(subject="repro-lint")
    for f in iter_python_files(paths):
        report.diagnostics.extend(lint_file(f, codes=codes))
    return report
