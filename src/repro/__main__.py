"""Command-line interface.

Examples::

    # time one cross-mesh resharding (Table 2's case 3 shape)
    python -m repro reshard --shape 1024,1024,512 --src-spec RS0R \\
        --dst-spec S0RR --src-mesh 2,4 --dst-mesh 2,4 --strategy broadcast

    # compare all strategies, with data verification on a small tensor
    python -m repro reshard --shape 64,64,64 --src-spec S0RR --dst-spec RS1R \\
        --strategy all --verify

    # one end-to-end training iteration
    python -m repro e2e --model utransformer --method ours alpa signal

    # regenerate every paper table/figure into EXPERIMENTS.md
    python -m repro report --output EXPERIMENTS.md

    # replay the last reshard/e2e run's telemetry into a Chrome trace
    python -m repro trace trace.json --filter flow
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _export_trace(streams, path: str) -> None:
    """Write labelled telemetry streams as Chrome trace JSON or JSONL."""
    from .runtime.trace import (
        chrome_trace_events,
        records_to_jsonl_dicts,
        write_chrome_trace_file,
        write_jsonl,
    )

    if path.endswith(".jsonl"):
        dicts: list[dict] = []
        for run, bus in streams:
            dicts.extend(records_to_jsonl_dicts(bus, run=run))
        n = write_jsonl(dicts, path)
        print(f"wrote {n} telemetry record(s) to {path}")
    else:
        events: list[dict] = []
        for run, bus in streams:
            events.extend(chrome_trace_events(bus, run=run))
        write_chrome_trace_file(events, path)
        print(f"wrote {len(events)} trace event(s) to {path}")


def _persist_last_run(streams) -> None:
    """Best-effort save for `python -m repro trace` replay."""
    from .runtime.trace import save_last_run

    save_last_run(streams)


def _parse_ints(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {text!r}")


def _dump_plan_state(pass_name: str, state) -> None:
    """Print a compact rendering of the evolving plan after one pass."""
    print(f"  -- after {pass_name} --")
    if state.schedule is not None:
        print(
            f"     schedule[{state.schedule.algorithm}]: "
            f"assignment={state.schedule.assignment}"
        )
    if state.plan is None:
        print(f"     no ops yet; {len(state.unit_tasks)} unit task(s) lowered")
        return
    for op in state.plan.ops[:6]:
        text = repr(op)
        print("     " + (text if len(text) <= 110 else text[:107] + "..."))
    if len(state.plan.ops) > 6:
        print(f"     ... {len(state.plan.ops) - 6} more op(s)")


def cmd_reshard(args: argparse.Namespace) -> int:
    from .compiler import CompileContext, CompileTimeout, compile_resharding
    from .core.api import reshard
    from .core.task import ReshardingTask
    from .experiments.common import fmt_bytes, fmt_seconds, make_microbench_meshes
    from .strategies import STRATEGIES

    if len(args.src_mesh) != 2 or len(args.dst_mesh) != 2:
        print("mesh shapes must be 2-D, e.g. 2,4", file=sys.stderr)
        return 2
    cluster = None
    if args.topology:
        from .sim.cluster import Cluster, ClusterSpec
        from .sim.topology import make_topology

        n_hosts = args.src_mesh[0] + args.dst_mesh[0]
        kwargs: dict = {}
        if args.topology == "torus":
            kwargs = {"rows": 1, "cols": n_hosts}
        elif args.topology == "fat_tree":
            kwargs = {"hosts_per_leaf": max(1, n_hosts // 2)}
        cluster = Cluster(
            ClusterSpec(
                n_hosts=n_hosts,
                devices_per_host=max(args.src_mesh[1], args.dst_mesh[1]),
                topology=make_topology(args.topology, **kwargs),
            )
        )
    _cluster, src, dst = make_microbench_meshes(
        args.src_mesh, args.dst_mesh, cluster=cluster
    )
    strategies = (
        sorted(set(STRATEGIES) - {"alpa"}) if args.strategy == "all" else [args.strategy]
    )
    tensor_or_shape = args.shape
    if args.verify:
        n = int(np.prod(args.shape))
        tensor_or_shape = np.arange(n, dtype=np.float32).reshape(args.shape)
    print(
        f"reshard {args.src_spec}@{args.src_mesh} -> {args.dst_spec}@{args.dst_mesh}, "
        f"shape {args.shape} fp32"
    )
    streams = []
    for name in strategies:
        if args.explain or args.dump_plan_after or args.memory_budget is not None:
            from .core.validate import PlanValidationError

            # Compile fresh (uncached) so the pass pipeline actually
            # runs and its instrumentation reflects real work.
            task = ReshardingTask(
                args.shape, src, args.src_spec, dst, args.dst_spec,
                dtype=np.float32,
            )
            try:
                compiled = compile_resharding(
                    task,
                    CompileContext(
                        strategy=name,
                        cache=None,
                        deadline=args.timeout,
                        dump_after=tuple(args.dump_plan_after or ()),
                        on_dump=_dump_plan_state,
                        memory_budget=args.memory_budget,
                        validate=args.memory_budget is not None,
                    ),
                )
            except CompileTimeout as timeout:
                print(f"  {name:<10} compile timeout: {timeout}", file=sys.stderr)
                return 3
            except PlanValidationError as invalid:
                print(
                    f"  {name:<10} rejected by memory budget:\n    "
                    + str(invalid).replace("\n", "\n    "),
                    file=sys.stderr,
                )
                return 1
            if args.explain:
                print(f"  [{name}] pass pipeline:")
                for line in compiled.diagnostics.format_table().splitlines():
                    print("    " + line)
                from .analysis import static_host_bounds

                analysis = static_host_bounds(compiled.plan)
                print(f"  [{name}] static peak-buffer bound:")
                for line in analysis.format_table().splitlines():
                    print("    " + line)
                if args.memory_budget is not None:
                    verdict = (
                        "within" if analysis.peak <= args.memory_budget
                        else "EXCEEDS"
                    )
                    print(
                        f"    memory_budget {args.memory_budget:.0f} B: "
                        f"{verdict}"
                    )
        cache_kwargs = {"cache": None} if args.no_cache else {}
        try:
            r = reshard(tensor_or_shape, src, args.src_spec, dst, args.dst_spec,
                        strategy=name, deadline=args.timeout, **cache_kwargs)
        except CompileTimeout as timeout:
            print(f"  {name:<10} compile timeout: {timeout}", file=sys.stderr)
            return 3
        streams.append((name, r.timing.telemetry))
        verified = ""
        if args.verify and r.dst_tensor is not None:
            ok = bool(np.array_equal(r.dst_tensor.to_global(), tensor_or_shape))
            verified = f"  verified={ok}"
            if not ok:
                return 1
        print(
            f"  {name:<10} latency={fmt_seconds(r.latency):>11}  "
            f"cross-host={fmt_bytes(r.cross_host_bytes):>11}{verified}"
        )
    _persist_last_run(streams)
    if args.trace_out:
        _export_trace(streams, args.trace_out)
    return 0


def cmd_e2e(args: argparse.Namespace) -> int:
    from .models.gpt import GPT_CASES, build_gpt
    from .models.parallel import run_iteration
    from .models.utransformer import UTransformerConfig, build_utransformer

    if args.model == "gpt1":
        spec = build_gpt(GPT_CASES["GPT case1"])
    elif args.model == "gpt2":
        spec = build_gpt(GPT_CASES["GPT case2"])
    else:
        spec = build_utransformer(UTransformerConfig())
    print(f"{spec.name}: {spec.notes}; {spec.n_microbatches} micro-batches")
    if args.cache_stats:
        from .compiler import reset_default_plan_cache

        reset_default_plan_cache()
    streams = []
    for method in args.method:
        r = run_iteration(spec, method)
        streams.append((method, r.pipeline.telemetry))
        print(
            f"  {method:<10} iteration={r.iteration_time:8.2f}s  "
            f"throughput={r.throughput_tflops:7.2f} TFLOPS/GPU"
        )
    _persist_last_run(streams)
    if args.trace_out:
        _export_trace(streams, args.trace_out)
    if args.cache_stats:
        from .compiler import default_plan_cache

        stats = default_plan_cache().stats()
        print(
            f"plan cache: {stats.requests} request(s), {stats.hits} hit(s) "
            f"({stats.hit_rate:.1%}), {stats.misses} compile(s), "
            f"epoch {stats.epoch}"
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Replay the last run's telemetry into a Chrome trace (or JSONL)."""
    from .runtime.trace import (
        chrome_trace_events,
        dicts_to_records,
        last_run_path,
        read_jsonl,
        write_chrome_trace_file,
        write_jsonl,
    )

    path = args.input if args.input else str(last_run_path())
    try:
        dicts = read_jsonl(path)
    except FileNotFoundError:
        print(
            f"no saved run at {path}; run `python -m repro reshard`/`e2e` first",
            file=sys.stderr,
        )
        return 2
    if args.filter == "span":
        dicts = [d for d in dicts if d.get("type") == "span"]
    elif args.filter == "counter":
        dicts = [d for d in dicts if d.get("type") == "counter"]
    elif args.filter == "flow":
        dicts = [
            d for d in dicts if d.get("type") == "span" and d.get("cat") == "flow"
        ]
    if args.out.endswith(".jsonl"):
        n = write_jsonl(dicts, args.out)
        print(f"wrote {n} telemetry record(s) to {args.out}")
        return 0
    runs: list[str] = []
    for d in dicts:
        run = str(d.get("run", ""))
        if run not in runs:
            runs.append(run)
    events: list[dict] = []
    for run in runs:
        recs = dicts_to_records(
            d for d in dicts if str(d.get("run", "")) == run
        )
        events.extend(chrome_trace_events(recs, run=run))
    write_chrome_trace_file(events, args.out)
    print(f"wrote {len(events)} trace event(s) to {args.out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import write_report

    write_report(args.output, verbose=not args.quiet)
    print(f"wrote {args.output}")
    return 0


def _print_analysis(report, verbose: bool) -> bool:
    """Render one AnalysisReport; returns True when it has no errors."""
    n_err = len(report.errors)
    n_warn = len(report.warnings)
    status = "ok " if n_err == 0 else "FAIL"
    print(f"  {status} {report.subject:<40} {n_err} error(s), {n_warn} warning(s)")
    if n_err or verbose:
        for diag in report.diagnostics:
            for line in diag.format().splitlines():
                print("       " + line)
    return n_err == 0


def _analyze_compiled(
    task, strategy: str, label: str, verbose: bool, memory_budget=None
) -> bool:
    from .analysis import check_plan
    from .compiler import CompileContext, compile_resharding

    compiled = compile_resharding(
        task, CompileContext(strategy=strategy, validate=False)
    )
    report = check_plan(compiled.plan, memory_budget=memory_budget)
    report.subject = label
    return _print_analysis(report, verbose)


def _golden_reshardings(workload: str):
    """Yield (label, task, strategy) for one figure's golden workloads."""
    from .core.mesh import DeviceMesh
    from .core.task import ReshardingTask
    from .experiments.common import make_microbench_meshes, paper_cluster

    strategies = ("send_recv", "allgather", "broadcast")
    if workload == "fig5":
        from .experiments.fig5 import MESSAGE_SHAPE

        for n_hosts, gpus in [(1, 1), (1, 2), (1, 3), (1, 4), (2, 2), (3, 2), (4, 2)]:
            cluster = paper_cluster(1 + n_hosts, devices_per_host=4)
            src = DeviceMesh(cluster, [[0]])
            dst = DeviceMesh.from_hosts(
                cluster, range(1, 1 + n_hosts), devices_per_host=gpus
            )
            task = ReshardingTask(
                MESSAGE_SHAPE, src, "R", dst, "R", dtype=np.float32
            )
            for s in strategies:
                yield f"fig5[{n_hosts}x{gpus}:{s}]", task, s
    elif workload == "fig6":
        from .experiments.fig6 import TABLE2_CASES, TENSOR_SHAPE

        for case in TABLE2_CASES:
            _cluster, src, dst = make_microbench_meshes(
                case.send_mesh, case.recv_mesh
            )
            task = ReshardingTask(
                TENSOR_SHAPE, src, case.send_spec, dst, case.recv_spec,
                dtype=np.float32,
            )
            for s in strategies:
                yield f"fig6[{case.name}:{s}]", task, s
    elif workload == "fig7":
        from .experiments.fig7 import workloads

        for model_name, spec in workloads().items():
            for b in spec.boundaries:
                src_mesh = spec.stage_meshes[b.src_stage]
                dst_mesh = spec.stage_meshes[b.dst_stage]
                dtype = np.float16 if b.dtype == "fp16" else np.float32
                fwd = ReshardingTask(
                    b.shape, src_mesh, b.src_spec, dst_mesh, b.dst_spec,
                    dtype=dtype,
                )
                bwd = ReshardingTask(
                    b.shape, dst_mesh, b.dst_spec, src_mesh, b.src_spec,
                    dtype=dtype,
                )
                for s in strategies:
                    yield f"fig7[{model_name}:{b.label}:fwd:{s}]", fwd, s
                    yield f"fig7[{model_name}:{b.label}:bwd:{s}]", bwd, s
    else:
        raise ValueError(f"unknown workload {workload!r}")


def _analyze_fig7_schedules(verbose: bool) -> bool:
    """Statically analyze the pipeline schedules of the Table 3 models."""
    from .analysis import analyze_pipeline_schedule
    from .experiments.fig7 import workloads
    from .pipeline.stage import CommEdge, PipelineJob

    ok = True
    for model_name, spec in workloads().items():
        # Zero-time edges: the analyzer only needs the comm topology.
        edges = [
            CommEdge(
                src_stage=b.src_stage, dst_stage=b.dst_stage,
                fwd_time=0.0, bwd_time=0.0, label=b.label,
            )
            for b in spec.boundaries
        ]
        job = PipelineJob(
            stages=spec.profiles, edges=edges,
            n_microbatches=spec.n_microbatches,
        )
        for schedule in ("1f1b", "eager_1f1b", "gpipe"):
            report = analyze_pipeline_schedule(
                schedule, job.n_stages, spec.n_microbatches, job=job
            )
            report.subject = f"fig7[{model_name}:{schedule}]"
            ok = _print_analysis(report, verbose) and ok
    return ok


def cmd_analyze(args: argparse.Namespace) -> int:
    from .core.task import ReshardingTask
    from .experiments.common import make_microbench_meshes

    ok = True
    ran = False
    if args.plan_json:
        from .analysis import check_plan, load_plan_fixture

        for path in args.plan_json:
            fixture = load_plan_fixture(path)
            report = check_plan(fixture.plan, memory_budget=args.memory_budget)
            report.subject = path
            ok = _print_analysis(report, args.verbose) and ok
        ran = True
    if args.workload:
        for workload in args.workload:
            for label, task, strategy in _golden_reshardings(workload):
                ok = _analyze_compiled(
                    task, strategy, label, args.verbose,
                    memory_budget=args.memory_budget,
                ) and ok
            if workload == "fig7":
                ok = _analyze_fig7_schedules(args.verbose) and ok
        ran = True
    if args.pipeline:
        from .analysis import analyze_pipeline_schedule

        report = analyze_pipeline_schedule(
            args.pipeline, args.stages, args.microbatches
        )
        ok = _print_analysis(report, args.verbose) and ok
        ran = True
    if args.shape:
        if not (args.src_spec and args.dst_spec):
            print("--shape needs --src-spec and --dst-spec", file=sys.stderr)
            return 2
        _cluster, src, dst = make_microbench_meshes(args.src_mesh, args.dst_mesh)
        task = ReshardingTask(
            args.shape, src, args.src_spec, dst, args.dst_spec, dtype=np.float32
        )
        label = f"{args.src_spec}->{args.dst_spec}:{args.strategy}"
        ok = _analyze_compiled(
            task, args.strategy, label, args.verbose,
            memory_budget=args.memory_budget,
        ) and ok
        ran = True
    if not ran:
        print(
            "nothing to analyze: pass --workload, --plan-json, --pipeline, "
            "or --shape/--src-spec/--dst-spec",
            file=sys.stderr,
        )
        return 2
    return 0 if ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_paths

    report = lint_paths(args.paths, codes=args.codes)
    if report.diagnostics:
        for diag in report.diagnostics:
            print(diag.format())
        print(f"{len(report.diagnostics)} finding(s)")
        return 1
    print(f"repro-lint: clean ({' '.join(args.paths)})")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Property-based chaos fuzzing of compile → simulate → verify.

    Deterministic under ``--seed``: the same arguments always fuzz the
    identical schedules and print the identical campaign digest.  With
    ``--check``, exit 1 on any invariant violation.
    """
    import json

    from .fuzz import run_fuzz

    stats = run_fuzz(
        runs=args.runs,
        seed=args.seed,
        break_reroot=args.break_reroot,
        break_memory=args.break_memory,
        save_repros_dir=args.save_repros,
    )
    if args.json:
        print(json.dumps(stats.to_json(), indent=2, sort_keys=True))
    else:
        print(
            f"fuzz: {stats.runs} run(s), {stats.events_injected} fault "
            f"event(s) injected, {stats.faults_observed} fault(s) observed, "
            f"{stats.loud_failures} loud failure(s), "
            f"{stats.corruptions_detected} corruption(s) detected, "
            f"{stats.replans_checked} replan view(s) checked"
        )
        print(f"campaign digest: {stats.digest}")
        for v in stats.violations:
            print(
                f"VIOLATION [{v.invariant}] {v.workload} run {v.run_index}: "
                f"{v.detail}"
            )
            print(
                "  reproducer: "
                + json.dumps(v.reproducer()["schedule"], sort_keys=True)
            )
    if args.check:
        if stats.violations:
            for v in stats.violations:
                print(
                    f"CHECK FAIL: [{v.invariant}] {v.workload} run "
                    f"{v.run_index}",
                    file=sys.stderr,
                )
            return 1
        print("fuzz checks: ok")
    return 0 if not stats.violations else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resharding service under a seeded synthetic load.

    The whole run executes on the deterministic virtual-time loop, so
    the same arguments always produce the identical report (including
    the telemetry digest).  With ``--check``, exit 1 unless the
    overload-safety gates hold: zero worker crashes, bounded queue
    depth, and (for bursty profiles) at least one coalesced compile.
    """
    import dataclasses
    import json

    from .service import (
        PROFILES,
        AdmissionConfig,
        BreakerConfig,
        ServiceChaos,
        ServiceConfig,
        run_load,
    )

    profile = dataclasses.replace(
        PROFILES[args.profile],
        n_requests=args.requests,
        n_tenants=args.tenants,
    )
    config = ServiceConfig(
        n_workers=args.workers,
        admission=AdmissionConfig(
            max_queue_depth=args.max_queue_depth,
            per_tenant_depth=args.per_tenant_depth,
            rate=args.rate,
        ),
        breaker=BreakerConfig(),
    )
    chaos = None
    if args.chaos:
        chaos = ServiceChaos(
            seed=args.seed,
            slow_rate=0.2,
            slow_extra=0.05,
            fault_rate=0.15,
            cancel_rate=0.05,
            cancel_after=0.01,
            poison_requests=(f"req-{args.requests // 2:04d}",),
        )
    report = run_load(
        profile, seed=args.seed, config=config, chaos=chaos, timeout=args.timeout
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format_summary())
    if args.check:
        failures = []
        if report.worker_crashes:
            failures.append(f"{report.worker_crashes} worker crash(es)")
        if report.max_queue_depth > config.admission.max_queue_depth:
            failures.append(
                f"queue depth {report.max_queue_depth} exceeded bound "
                f"{config.admission.max_queue_depth}"
            )
        if profile.bursty and report.n_coalesced == 0:
            failures.append("bursty load produced zero coalesced compiles")
        answered = sum(report.status_counts.values())
        if answered != report.n_requests:
            failures.append(
                f"only {answered} of {report.n_requests} requests answered"
            )
        if failures:
            for f in failures:
                print(f"CHECK FAIL: {f}", file=sys.stderr)
            return 1
        print("service checks: ok")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        ablations,
        fig3,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        table1,
        topology_zoo,
    )
    from .experiments.common import format_markdown

    modules = {
        "E1": fig5, "E2": fig6, "E3": table1, "E4": fig7,
        "E5": fig8, "E6": fig9, "E7": fig3, "A0": ablations,
        "E8": topology_zoo,
    }
    mod = modules[args.id]
    print(format_markdown(mod.run()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Cross-mesh resharding reproduction (MLSys 2023) CLI",
    )
    sub = p.add_subparsers(dest="command", required=True)

    r = sub.add_parser("reshard", help="time one cross-mesh resharding")
    r.add_argument("--shape", type=_parse_ints, required=True)
    r.add_argument("--src-spec", required=True)
    r.add_argument("--dst-spec", required=True)
    r.add_argument("--src-mesh", type=_parse_ints, default=(2, 4))
    r.add_argument("--dst-mesh", type=_parse_ints, default=(2, 4))
    r.add_argument(
        "--strategy",
        default="broadcast",
        choices=["send_recv", "allgather", "broadcast", "multicast", "signal",
                 "auto", "all"],
    )
    r.add_argument(
        "--topology",
        choices=["two_tier", "fat_tree", "torus", "rail"],
        help="cluster topology for the microbench cluster (default: the "
             "paper's two-tier shape)",
    )
    r.add_argument("--verify", action="store_true",
                   help="move real data and check the destination layout")
    r.add_argument("--explain", action="store_true",
                   help="print per-pass wall time and op-count deltas")
    r.add_argument(
        "--dump-plan-after",
        action="append",
        choices=["lower", "select", "schedule", "fault_rewrite", "emit", "validate"],
        help="dump the evolving plan after the named pass (repeatable)",
    )
    r.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed plan cache")
    r.add_argument("--memory-budget", type=float, metavar="BYTES",
                   help="per-host transient buffer budget; compiles are "
                        "validated against the static bound (exit 1 on "
                        "M001/M003)")
    r.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="deterministic compile deadline in budget seconds "
                        "(machine-independent; exit 3 on timeout)")
    r.add_argument("--trace-out", metavar="PATH",
                   help="dump the run's telemetry (Chrome trace .json or .jsonl)")
    r.set_defaults(fn=cmd_reshard)

    e = sub.add_parser("e2e", help="simulate one training iteration")
    e.add_argument("--model", choices=["gpt1", "gpt2", "utransformer"],
                   default="utransformer")
    e.add_argument(
        "--method",
        nargs="+",
        default=["alpa", "ours", "signal"],
        choices=["send_recv", "alpa", "broadcast", "overlap", "ours",
                 "ours_delay", "signal"],
    )
    e.add_argument("--cache-stats", action="store_true",
                   help="reset the plan cache first and report hit/miss counts")
    e.add_argument("--trace-out", metavar="PATH",
                   help="dump the run's telemetry (Chrome trace .json or .jsonl)")
    e.set_defaults(fn=cmd_e2e)

    s = sub.add_parser(
        "serve",
        help="drive the resharding service under seeded load",
        description=(
            "Run the overload-safe planning service on the deterministic "
            "virtual-time loop under a seeded multi-tenant load profile; "
            "print (or check) the overload-safety report."
        ),
    )
    s.add_argument("--profile", choices=["steady", "bursty"], default="bursty")
    s.add_argument("--requests", type=int, default=120)
    s.add_argument("--tenants", type=int, default=4)
    s.add_argument("--workers", type=int, default=2)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--max-queue-depth", type=int, default=64)
    s.add_argument("--per-tenant-depth", type=int, default=16)
    s.add_argument("--rate", type=float, default=0.0,
                   help="per-tenant token-bucket rate (requests/s; 0 = off)")
    s.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="per-request admission-to-response timeout")
    s.add_argument("--chaos", action="store_true",
                   help="inject seeded chaos: slow compiles, transient "
                        "faults, client cancellations, one poison request")
    s.add_argument("--json", action="store_true",
                   help="print the full report as JSON")
    s.add_argument("--check", action="store_true",
                   help="exit 1 unless the overload-safety gates hold")
    s.set_defaults(fn=cmd_serve)

    x = sub.add_parser("experiment", help="run one paper experiment")
    x.add_argument(
        "id", choices=["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "A0"]
    )
    x.set_defaults(fn=cmd_experiment)

    t = sub.add_parser("trace", help="replay the last run's telemetry")
    t.add_argument("out", help="output path (.json Chrome trace or .jsonl)")
    t.add_argument("--filter", choices=["span", "counter", "flow"],
                   help="keep only spans, counter samples, or network flow spans")
    t.add_argument("--input", metavar="PATH",
                   help="read this JSONL instead of the saved last run")
    t.set_defaults(fn=cmd_trace)

    rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    rep.add_argument("--output", default="EXPERIMENTS.md")
    rep.add_argument("--quiet", action="store_true")
    rep.set_defaults(fn=cmd_report)

    a = sub.add_parser(
        "analyze",
        help="statically verify plans and pipeline schedules",
        description=(
            "Run the static analyzer (coverage, write races, dependency "
            "sanity, re-rooting consistency, deadlock, stage memory) over "
            "compiled plans or hand-written plan JSON; exit 1 on any "
            "ERROR diagnostic."
        ),
    )
    a.add_argument(
        "--workload",
        action="append",
        choices=["fig5", "fig6", "fig7"],
        help="analyze one figure's golden plans (repeatable)",
    )
    a.add_argument("--plan-json", action="append", metavar="PATH",
                   help="analyze a plan fixture JSON file (repeatable)")
    a.add_argument("--pipeline", choices=["gpipe", "1f1b", "eager_1f1b"],
                   help="analyze a named pipeline schedule")
    a.add_argument("--stages", type=int, default=4)
    a.add_argument("--microbatches", type=int, default=8)
    a.add_argument("--shape", type=_parse_ints,
                   help="compile and analyze one resharding (with "
                        "--src-spec/--dst-spec, reshard-style)")
    a.add_argument("--src-spec")
    a.add_argument("--dst-spec")
    a.add_argument("--src-mesh", type=_parse_ints, default=(2, 4))
    a.add_argument("--dst-mesh", type=_parse_ints, default=(2, 4))
    a.add_argument(
        "--strategy",
        default="broadcast",
        choices=["send_recv", "allgather", "broadcast", "multicast", "auto"],
    )
    a.add_argument("--memory-budget", type=float, metavar="BYTES",
                   help="per-host transient buffer budget for the memory "
                        "analyzer (M001 on exceed)")
    a.add_argument("--verbose", action="store_true",
                   help="print diagnostics even for clean subjects")
    a.set_defaults(fn=cmd_analyze)

    lint = sub.add_parser(
        "lint",
        help="repro-lint: ban nondeterminism in repo code",
        description=(
            "AST lint for determinism leaks: wall-clock calls (L001), "
            "unseeded RNG (L002), set iteration (L003), raw itemsize "
            "byte math (L004).  Exit 1 on any "
            "finding; waive single lines with "
            "'# repro-lint: allow[CODE] reason'."
        ),
    )
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint (recursive)")
    lint.add_argument("--codes", nargs="+", metavar="CODE",
                      help="restrict to these codes (e.g. L001 L003)")
    lint.set_defaults(fn=cmd_lint)

    fz = sub.add_parser(
        "fuzz",
        help="property-based chaos fuzzing of compile/simulate/verify",
        description=(
            "Generate seeded random fault schedules (correlated domain "
            "failures, partitions, gray corruption, and the independent "
            "classes) against golden workloads, asserting the standing "
            "invariants on every run: no hangs, delivery integrity or "
            "loud failure, byte-deterministic replay, analyzer-clean "
            "plans.  Failing schedules are shrunk to minimal "
            "reproducers."
        ),
    )
    fz.add_argument("--runs", type=int, default=100,
                    help="number of fuzzed schedules (default 100)")
    fz.add_argument("--seed", type=int, default=0)
    fz.add_argument("--check", action="store_true",
                    help="exit 1 on any invariant violation")
    fz.add_argument("--json", action="store_true",
                    help="emit the campaign stats as JSON")
    fz.add_argument("--break-reroot", action="store_true",
                    help="self-test: compile with a deliberately broken "
                         "re-root pass (violations expected)")
    fz.add_argument("--break-memory", action="store_true",
                    help="self-test: simulate with a deliberately leaky "
                         "buffer accountant (memory-sound violations "
                         "expected)")
    fz.add_argument("--save-repros", metavar="DIR", default=None,
                    help="write shrunk reproducer schedules to DIR")
    fz.set_defaults(fn=cmd_fuzz)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
