"""The discrete-event kernel every simulator runs on.

:class:`EventLoop` is the minimal deterministic priority-queue engine
(moved here from ``repro.sim.events``, which remains as a compatibility
shim).  All simulated time is in seconds (float).  Determinism is
guaranteed by FIFO tie-breaking at equal timestamps: the heap holds one
entry per *distinct* timestamp, and each timestamp owns an
insertion-ordered batch of events, so two runs over the same inputs
produce identical schedules on every Python version.

Batching is also the performance story.  The network simulator re-arms
one completion event per rate reallocation and one timeout per flow,
then cancels most of them; with a per-event heap every cancel/re-arm
pair was two ``O(log n)`` heap operations on a queue whose majority was
dead entries.  Here a cancel is a flag flip (lazy cancellation, skipped
at pop time), scheduling into an existing timestamp is an ``O(1)`` list
append, and when dead events dominate the queue it is compacted in one
``O(n)`` sweep — the heap only ever sees distinct timestamps.

:class:`Kernel` generalizes the loop into the shared runtime substrate:

* a :class:`~repro.runtime.telemetry.TelemetryBus` wired to the
  simulated clock, so every executor reports through one span stream;
* named :class:`~repro.runtime.resources.Resource` token pools and
  :class:`~repro.runtime.resources.SerialChannel` reservation ledgers
  (NICs, devices, directed stage-pair links) looked up by name.

The engine stays deliberately tiny: the network model
(:mod:`repro.sim.network`), the pipeline executors, and the recovery
supervisor all drive it with plain callbacks instead of coroutines,
which keeps stack traces shallow and the hot loop cheap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from .resources import Resource, SerialChannel
from .telemetry import TelemetryBus

__all__ = ["Event", "EventLoop", "Kernel"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` — chronological order with FIFO
    tie-breaking.  ``seq`` is assigned globally per loop; within one
    timestamp batch it is also the list position.

    Slotted: the network simulator arms (and mostly cancels) one of
    these per flow timeout and per rate reallocation.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: owning loop while the event is still queued; dropped (set to
    #: None) once the event runs, so a late cancel() cannot skew the
    #: loop's live/cancelled accounting.
    loop: Optional["EventLoop"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.loop is not None:
                self.loop._note_cancel()


class _Batch:
    """All events scheduled at one exact timestamp, in insertion order.

    ``idx`` is the execution cursor: events before it already ran (or
    were skipped as cancelled).  The batch stays registered until the
    cursor passes the end, so same-timestamp events scheduled *during*
    execution append here and run in the same pass — exactly the old
    per-event heap's (time, seq) order.
    """

    __slots__ = ("time", "events", "idx")

    def __init__(self, time: float) -> None:
        self.time = time
        self.events: list[Event] = []
        self.idx = 0


#: queue-size floor below which compaction is never attempted
_COMPACT_MIN = 512


class EventLoop:
    """Deterministic discrete-event loop.

    Usage::

        loop = EventLoop()
        loop.call_at(1.5, lambda: print("hello at t=1.5"))
        loop.run()
        assert loop.now == 1.5
    """

    def __init__(self) -> None:
        # min-heap of distinct timestamps; one _Batch per entry
        self._times: list[float] = []
        self._batches: dict[float, _Batch] = {}
        self._seq = 0
        self.now: float = 0.0
        self._n_processed = 0
        self._n_live = 0  # queued and not cancelled
        self._n_cancelled = 0  # queued and cancelled (lazy, not yet skipped)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulated time ``when``."""
        now = self.now
        if when < now - 1e-12:
            raise ValueError(
                f"cannot schedule event in the past: {when} < now={now}"
            )
        t = when if when > now else now
        ev = Event(t, self._seq, fn, False, self)
        self._seq += 1
        batch = self._batches.get(t)
        if batch is None:
            batch = self._batches[t] = _Batch(t)
            heapq.heappush(self._times, t)
        batch.events.append(ev)
        self._n_live += 1
        return ev

    def call_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn)

    # ------------------------------------------------------------------
    # Queue accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A queued event flipped to cancelled (lazy cancellation)."""
        self._n_live -= 1
        self._n_cancelled += 1
        # When dead events dominate a large queue, sweep them out so the
        # batch lists (and worst-case skip scans) stay proportional to
        # live work.  Amortized O(1): each sweep halves the queue.
        if (
            self._n_cancelled > _COMPACT_MIN
            and self._n_cancelled > self._n_live
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled event; rebuild the timestamp heap."""
        times: list[float] = []
        batches: dict[float, _Batch] = {}
        for t in self._times:
            old = self._batches[t]
            events = [ev for ev in old.events[old.idx :] if not ev.cancelled]
            if events:
                fresh = _Batch(t)
                fresh.events = events
                batches[t] = fresh
                times.append(t)
        heapq.heapify(times)
        self._times = times
        self._batches = batches
        self._n_cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_time(self) -> Optional[float]:
        """Earliest timestamp with any queued event, pruning empty batches."""
        while self._times:
            t = self._times[0]
            batch = self._batches[t]
            if batch.idx < len(batch.events):
                return t
            heapq.heappop(self._times)
            del self._batches[t]
        return None

    def step(self) -> bool:
        """Process the next pending event.  Returns False when idle."""
        while self._times:
            t = self._times[0]
            batch = self._batches[t]
            events = batch.events
            i = batch.idx
            while i < len(events):
                ev = events[i]
                i += 1
                if ev.cancelled:
                    self._n_cancelled -= 1
                    continue
                batch.idx = i
                self.now = t
                self._n_processed += 1
                self._n_live -= 1
                ev.loop = None
                ev.fn()
                return True
            batch.idx = i
            heapq.heappop(self._times)
            del self._batches[t]
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulated time.  ``max_events`` is a runaway
        guard; hitting it raises ``RuntimeError``.
        """
        n = 0
        # Inlined step(): one heap peek + one dict lookup per event.  The
        # loop attributes are re-read every iteration because a callback
        # may cancel enough events to trigger _compact(), which rebinds
        # self._times / self._batches wholesale.
        while True:
            times = self._times
            if not times:
                break
            t = times[0]
            batch = self._batches[t]
            events = batch.events
            i = batch.idx
            if i >= len(events):
                heapq.heappop(times)
                del self._batches[t]
                continue
            if until is not None and t > until:
                self.now = until
                break
            ev = events[i]
            batch.idx = i + 1
            if ev.cancelled:
                self._n_cancelled -= 1
                continue
            self.now = t
            self._n_processed += 1
            self._n_live -= 1
            ev.loop = None
            ev.fn()
            n += 1
            if n > max_events:
                raise RuntimeError(f"event budget exceeded ({max_events} events)")
        return self.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return self._n_live

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._n_processed


class Kernel(EventLoop):
    """Event loop + telemetry bus + named resources: the shared runtime.

    A fresh kernel owns a fresh bus whose clock is the kernel's ``now``;
    pass ``bus`` to share one stream across several kernels (e.g. the
    auto strategy scoring candidates onto one trace).
    """

    def __init__(self, bus: Optional[TelemetryBus] = None) -> None:
        super().__init__()
        self.bus: TelemetryBus = (
            bus if bus is not None else TelemetryBus(clock=lambda: self.now)
        )
        self._resources: dict[str, Resource] = {}
        self._channels: dict[str, SerialChannel] = {}

    def resource(self, name: str, capacity: int = 1) -> Resource:
        """Get-or-create the named FIFO token pool."""
        found = self._resources.get(name)
        if found is None:
            found = self._resources[name] = Resource(self, name, capacity)
        elif found.capacity != capacity:
            raise ValueError(
                f"resource {name!r} exists with capacity {found.capacity}, "
                f"requested {capacity}"
            )
        return found

    def channel(self, name: str) -> SerialChannel:
        """Get-or-create the named serial reservation channel."""
        found = self._channels.get(name)
        if found is None:
            found = self._channels[name] = SerialChannel(self, name)
        return found

    @property
    def resources(self) -> dict[str, Resource]:
        """Live view of the kernel's named token pools."""
        return self._resources

    @property
    def channels(self) -> dict[str, SerialChannel]:
        """Live view of the kernel's named serial channels."""
        return self._channels
