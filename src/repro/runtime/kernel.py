"""The discrete-event kernel every simulator runs on.

:class:`EventLoop` is the minimal deterministic priority-queue engine
(moved here from ``repro.sim.events``, which remains as a compatibility
shim).  All simulated time is in seconds (float).  Determinism is
guaranteed by breaking time ties with a monotonically increasing
sequence number in the heap key, so events at equal timestamps pop in
insertion order on every Python version and two runs over the same
inputs produce identical schedules.

:class:`Kernel` generalizes the loop into the shared runtime substrate:

* a :class:`~repro.runtime.telemetry.TelemetryBus` wired to the
  simulated clock, so every executor reports through one span stream;
* named :class:`~repro.runtime.resources.Resource` token pools and
  :class:`~repro.runtime.resources.SerialChannel` reservation ledgers
  (NICs, devices, directed stage-pair links) looked up by name.

The engine stays deliberately tiny: the network model
(:mod:`repro.sim.network`), the pipeline executors, and the recovery
supervisor all drive it with plain callbacks instead of coroutines,
which keeps stack traces shallow and the hot loop cheap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from .resources import Resource, SerialChannel
from .telemetry import TelemetryBus

__all__ = ["Event", "EventLoop", "Kernel"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in
    chronological order with FIFO tie-breaking.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event loop.

    Usage::

        loop = EventLoop()
        loop.call_at(1.5, lambda: print("hello at t=1.5"))
        loop.run()
        assert loop.now == 1.5
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self.now: float = 0.0
        self._n_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulated time ``when``."""
        if when < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        ev = Event(time=max(when, self.now), seq=self._seq, fn=fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def call_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.  Returns False when idle."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now = ev.time
            self._n_processed += 1
            ev.fn()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulated time.  ``max_events`` is a runaway
        guard; hitting it raises ``RuntimeError``.
        """
        n = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                break
            if not self.step():
                break
            n += 1
            if n > max_events:
                raise RuntimeError(f"event budget exceeded ({max_events} events)")
        return self.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._n_processed


class Kernel(EventLoop):
    """Event loop + telemetry bus + named resources: the shared runtime.

    A fresh kernel owns a fresh bus whose clock is the kernel's ``now``;
    pass ``bus`` to share one stream across several kernels (e.g. the
    auto strategy scoring candidates onto one trace).
    """

    def __init__(self, bus: Optional[TelemetryBus] = None) -> None:
        super().__init__()
        self.bus: TelemetryBus = (
            bus if bus is not None else TelemetryBus(clock=lambda: self.now)
        )
        self._resources: dict[str, Resource] = {}
        self._channels: dict[str, SerialChannel] = {}

    def resource(self, name: str, capacity: int = 1) -> Resource:
        """Get-or-create the named FIFO token pool."""
        found = self._resources.get(name)
        if found is None:
            found = self._resources[name] = Resource(self, name, capacity)
        elif found.capacity != capacity:
            raise ValueError(
                f"resource {name!r} exists with capacity {found.capacity}, "
                f"requested {capacity}"
            )
        return found

    def channel(self, name: str) -> SerialChannel:
        """Get-or-create the named serial reservation channel."""
        found = self._channels.get(name)
        if found is None:
            found = self._channels[name] = SerialChannel(self, name)
        return found

    @property
    def resources(self) -> dict[str, Resource]:
        """Live view of the kernel's named token pools."""
        return self._resources

    @property
    def channels(self) -> dict[str, SerialChannel]:
        """Live view of the kernel's named serial channels."""
        return self._channels
