"""Export a telemetry bus: Chrome trace JSON, JSONL, last-run replay.

One exporter for every simulator, replacing the three bespoke record
formats (pipeline timeline entries, interleaved tuples, network flow
records) that used to each have their own dump path:

* :func:`chrome_trace_events` — generic ``chrome://tracing`` /
  Perfetto "trace event" conversion: one process per track group, one
  thread per track, counters as ``C`` events, marks as instants;
* :func:`write_jsonl` / :func:`read_jsonl` — a line-per-record format
  that round-trips the full bus (spans, counters, marks);
* :func:`save_last_run` / :func:`last_run_path` — the persistence
  behind ``python -m repro trace``: CLI commands append their bus
  streams (tagged with a run label) so the last invocation can be
  replayed into a Chrome trace after the fact.

Timestamps in Chrome traces are microseconds (the format's convention);
JSONL keeps raw simulated seconds.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable, Optional, Sequence, Union

from .telemetry import CounterSample, MarkRecord, SpanRecord, TelemetryBus

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace_file",
    "write_jsonl",
    "read_jsonl",
    "records_to_jsonl_dicts",
    "save_last_run",
    "last_run_path",
]

_US = 1e6

Record = Union[SpanRecord, CounterSample, MarkRecord]


def _track_ids(tracks: Sequence[str]) -> dict[str, tuple[int, int]]:
    """Stable (pid, tid) assignment: one pid per track prefix.

    Tracks follow a ``group:detail`` convention (``stage:0``,
    ``dev:3``, ``chan:0->1:fwd``); every distinct group becomes a
    process and each track a thread inside it, so related rows sit
    together in the viewer.
    """
    ids: dict[str, tuple[int, int]] = {}
    groups: dict[str, int] = {}
    next_tid: dict[int, int] = {}
    for track in tracks:
        if track in ids:
            continue
        group = track.split(":", 1)[0] if ":" in track else track
        pid = groups.setdefault(group, len(groups))
        tid = next_tid.get(pid, 0)
        next_tid[pid] = tid + 1
        ids[track] = (pid, tid)
    return ids


def chrome_trace_events(
    records: Union[TelemetryBus, Iterable[Record]],
    run: str = "",
) -> list[dict[str, object]]:
    """Convert bus records to Chrome trace events (generic layout)."""
    if isinstance(records, TelemetryBus):
        recs: list[Record] = [
            *records.spans,
            *records.counters,
            *records.marks,
        ]
    else:
        recs = list(records)
    prefix = f"{run}/" if run else ""
    tracks = [r.track for r in recs]
    ids = _track_ids([prefix + t if t else prefix.rstrip("/") or "run" for t in tracks])
    events: list[dict[str, object]] = []
    for track, (pid, tid) in ids.items():
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": track.split(":", 1)[0] if ":" in track else track}}
        )
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": track}}
        )
    for rec in recs:
        track = prefix + rec.track if rec.track else prefix.rstrip("/") or "run"
        pid, tid = ids[track]
        if isinstance(rec, SpanRecord):
            events.append(
                {
                    "name": rec.name,
                    "cat": rec.cat,
                    "ph": "X",
                    "ts": rec.start * _US,
                    "dur": max(rec.duration * _US, 0.01),
                    "pid": pid,
                    "tid": tid,
                    "args": dict(rec.attrs),
                }
            )
        elif isinstance(rec, CounterSample):
            events.append(
                {
                    "name": rec.name,
                    "ph": "C",
                    "ts": rec.time * _US,
                    "pid": pid,
                    "args": {rec.name: rec.value},
                }
            )
        else:
            events.append(
                {
                    "name": rec.name,
                    "ph": "i",
                    "s": "t",
                    "ts": rec.time * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(rec.attrs),
                }
            )
    return events


def write_chrome_trace_file(events: list[dict[str, object]], path: str) -> None:
    """Write trace events as a Chrome-tracing JSON file."""
    with open(path, "w") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def records_to_jsonl_dicts(
    bus: TelemetryBus, run: str = ""
) -> list[dict[str, object]]:
    """Flatten one bus into JSONL-ready dicts (emission order per kind)."""
    out: list[dict[str, object]] = []
    for s in bus.spans:
        out.append(
            {
                "type": "span",
                "run": run,
                "name": s.name,
                "cat": s.cat,
                "track": s.track,
                "start": s.start,
                "end": s.end,
                "depth": s.depth,
                "parent": s.parent,
                "attrs": dict(s.attrs),
            }
        )
    for c in bus.counters:
        out.append(
            {
                "type": "counter",
                "run": run,
                "name": c.name,
                "track": c.track,
                "time": c.time,
                "value": c.value,
            }
        )
    for m in bus.marks:
        out.append(
            {
                "type": "mark",
                "run": run,
                "name": m.name,
                "track": m.track,
                "time": m.time,
                "attrs": dict(m.attrs),
            }
        )
    return out


def write_jsonl(dicts: Iterable[dict[str, object]], path: str) -> int:
    """Write one JSON object per line; returns the number of lines."""
    n = 0
    with open(path, "w") as f:
        for d in dicts:
            f.write(json.dumps(d))
            f.write("\n")
            n += 1
    return n


def read_jsonl(path: str) -> list[dict[str, object]]:
    """Read a JSONL file back into dicts (inverse of :func:`write_jsonl`)."""
    out: list[dict[str, object]] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                loaded = json.loads(line)
                if not isinstance(loaded, dict):
                    raise ValueError(f"expected a JSON object per line, got {line!r}")
                out.append(loaded)
    return out


def dicts_to_records(dicts: Iterable[dict[str, object]]) -> list[Record]:
    """Rebuild typed records from JSONL dicts (unknown types rejected)."""
    recs: list[Record] = []
    for d in dicts:
        kind = d.get("type")
        if kind == "span":
            recs.append(
                SpanRecord(
                    name=str(d["name"]),
                    cat=str(d["cat"]),
                    track=str(d["track"]),
                    start=float(d["start"]),  # type: ignore[arg-type]
                    end=float(d["end"]),  # type: ignore[arg-type]
                    depth=int(d.get("depth", 0)),  # type: ignore[arg-type]
                    parent=str(d.get("parent", "")),
                    attrs=d.get("attrs", {}),  # type: ignore[arg-type]
                )
            )
        elif kind == "counter":
            recs.append(
                CounterSample(
                    name=str(d["name"]),
                    track=str(d["track"]),
                    time=float(d["time"]),  # type: ignore[arg-type]
                    value=float(d["value"]),  # type: ignore[arg-type]
                )
            )
        elif kind == "mark":
            recs.append(
                MarkRecord(
                    name=str(d["name"]),
                    track=str(d["track"]),
                    time=float(d["time"]),  # type: ignore[arg-type]
                    attrs=d.get("attrs", {}),  # type: ignore[arg-type]
                )
            )
        else:
            raise ValueError(f"unknown record type {kind!r}")
    return recs


# ----------------------------------------------------------------------
# Last-run persistence (python -m repro trace)
# ----------------------------------------------------------------------
def last_run_path() -> pathlib.Path:
    """Where CLI commands persist their bus streams.

    Override the directory with ``REPRO_TRACE_DIR``; defaults to
    ``~/.cache/repro``.
    """
    root = os.environ.get("REPRO_TRACE_DIR")
    base = pathlib.Path(root) if root else pathlib.Path.home() / ".cache" / "repro"
    return base / "last_run.jsonl"


def save_last_run(
    streams: Sequence[tuple[str, TelemetryBus]],
    path: Optional[pathlib.Path] = None,
) -> Optional[pathlib.Path]:
    """Persist labelled bus streams as the replayable "last run".

    Returns the path written, or ``None`` when the directory cannot be
    created (read-only environments must not break the CLI).
    """
    target = path if path is not None else last_run_path()
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        dicts: list[dict[str, object]] = []
        for run, bus in streams:
            dicts.extend(records_to_jsonl_dicts(bus, run=run))
        write_jsonl(dicts, str(target))
    except OSError:
        return None
    return target
