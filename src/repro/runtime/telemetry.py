"""Structured telemetry: spans, counters, gauges, marks, pluggable sinks.

The bus is the single source of truth for *what happened when* in a
simulation.  Executors emit records; result objects and visualizations
derive their timelines from the record stream instead of keeping private
lists.  Three record kinds:

* :class:`SpanRecord` — a named interval ``[start, end]`` on a *track*
  (a stage, a device, a channel, the supervisor), with a category and
  free-form attributes.  Spans may nest (``begin``/``end``), in which
  case ``depth``/``parent`` capture the enclosing span.
* :class:`CounterSample` — one sample of a named time series.
  :class:`Counter` enforces monotonicity (bytes delivered, retries);
  :class:`Gauge` may move both ways (live activations).
* :class:`MarkRecord` — an instant event (a fault strike, a decision).

Sinks observe records as they are emitted; the bus always records into
an in-memory store so ``bus.spans`` / ``bus.counters`` / ``bus.marks``
work out of the box, and extra sinks (streaming JSONL writers, test
probes) fan out via :meth:`TelemetryBus.add_sink`.

Emission sits on the simulators' hot paths (one span per compute task,
comm message, and network flow), so the store is append-only raw rows:
:meth:`TelemetryBus.span` and ``Counter.add`` cost one tuple plus one
list append, and the :class:`SpanRecord`/:class:`CounterSample` views
materialize lazily (incrementally, on first access through ``spans`` /
``counters``).  Subscribed sinks force materialization at emission time
so they still see every record live.  The ``bench_runtime_overhead``
gate keeps the whole kernel+telemetry path within 5% of the
pre-refactor executor's wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, Protocol, Union

__all__ = [
    "SpanRecord",
    "CounterSample",
    "MarkRecord",
    "SpanRow",
    "CounterRow",
    "TelemetrySink",
    "MemorySink",
    "Counter",
    "Gauge",
    "TelemetryBus",
]

AttrValue = Union[str, int, float, bool, None]

#: raw span row: (name, cat, track, start, end, depth, parent, attrs)
SpanRow = tuple[str, str, str, float, float, int, str, "dict[str, AttrValue]"]
#: raw counter row: (name, track, time, value)
CounterRow = tuple[str, str, float, float]


# The record classes are slotted with identity equality: millions are
# created on the simulators' hot paths, so construction cost dominates.
@dataclass(slots=True, eq=False)
class SpanRecord:
    """One named interval on a track."""

    name: str
    cat: str
    track: str
    start: float
    end: float
    depth: int = 0
    parent: str = ""
    attrs: Mapping[str, AttrValue] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True, eq=False)
class CounterSample:
    """One sample of a named time series (cumulative value at ``time``)."""

    name: str
    track: str
    time: float
    value: float


@dataclass(slots=True, eq=False)
class MarkRecord:
    """An instant event."""

    name: str
    track: str
    time: float
    attrs: Mapping[str, AttrValue] = field(default_factory=dict)


class TelemetrySink(Protocol):
    """Anything that observes the record stream."""

    def on_span(self, span: SpanRecord) -> None: ...

    def on_counter(self, sample: CounterSample) -> None: ...

    def on_mark(self, mark: MarkRecord) -> None: ...


class MemorySink:
    """Default sink: collect records in emission order."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.counters: list[CounterSample] = []
        self.marks: list[MarkRecord] = []

    def on_span(self, span: SpanRecord) -> None:
        self.spans.append(span)

    def on_counter(self, sample: CounterSample) -> None:
        self.counters.append(sample)

    def on_mark(self, mark: MarkRecord) -> None:
        self.marks.append(mark)


class Counter:
    """A monotonically non-decreasing cumulative counter."""

    __slots__ = ("_bus", "name", "track", "value")

    def __init__(self, bus: "TelemetryBus", name: str, track: str) -> None:
        self._bus = bus
        self.name = name
        self.track = track
        self.value = 0.0

    def add(self, delta: float, at: Optional[float] = None) -> float:
        """Add ``delta`` (>= 0) and emit a sample at time ``at`` (or now)."""
        if delta < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; negative delta {delta} "
                "(use a Gauge for values that move both ways)"
            )
        self.value += delta
        bus = self._bus
        bus._counter_rows.append(
            (self.name, self.track, bus._clock() if at is None else at, self.value)
        )
        if bus._sinks:
            bus._fan_out_counter()
        return self.value


class Gauge:
    """A cumulative series that may increase or decrease."""

    __slots__ = ("_bus", "name", "track", "value")

    def __init__(self, bus: "TelemetryBus", name: str, track: str) -> None:
        self._bus = bus
        self.name = name
        self.track = track
        self.value = 0.0

    def add(self, delta: float, at: Optional[float] = None) -> float:
        """Add ``delta`` and emit a sample at time ``at`` (or now)."""
        self.value += delta
        bus = self._bus
        bus._counter_rows.append(
            (self.name, self.track, bus._clock() if at is None else at, self.value)
        )
        if bus._sinks:
            bus._fan_out_counter()
        return self.value


class _OpenSpan:
    """Book-keeping for a ``begin()``-opened, not-yet-closed span."""

    __slots__ = ("name", "cat", "track", "start", "depth", "parent", "attrs")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        depth: int,
        parent: str,
        attrs: dict[str, AttrValue],
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.depth = depth
        self.parent = parent
        self.attrs = attrs


class TelemetryBus:
    """Span/counter/mark emitter with sink fan-out.

    ``clock`` supplies the *current simulated time* (normally the owning
    kernel's ``now``); retroactive emission with explicit timestamps is
    always allowed, so executors that compute an interval's endpoints up
    front (channel reservations, recovery cost models) can record it in
    one call.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sinks: tuple[TelemetrySink, ...] = (),
    ) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else lambda: 0.0
        # Append-only raw rows (the store of record); the SpanRecord /
        # CounterSample views materialize incrementally on access.
        self._span_rows: list[SpanRow] = []
        self._counter_rows: list[CounterRow] = []
        self._spans_view: list[SpanRecord] = []
        self._counters_view: list[CounterSample] = []
        self._marks: list[MarkRecord] = []
        self._sinks: list[TelemetrySink] = list(sinks)
        self._open: dict[str, list[_OpenSpan]] = {}
        self._series: dict[tuple[str, str, bool], Union[Counter, Gauge]] = {}

    # ------------------------------------------------------------------
    # Clock & sinks
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock()

    def add_sink(self, sink: TelemetrySink) -> None:
        """Subscribe ``sink`` to every record emitted from now on."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        end: float,
        attrs: Optional[dict[str, AttrValue]] = None,
    ) -> None:
        """Hot-path span emission: one row tuple, one append.

        Executors call this once per compute task / comm message / flow,
        so it deliberately returns nothing and defers record
        construction to the ``spans`` view.
        """
        stack = self._open.get(track)
        if stack:
            row = (name, cat, track, start, end, len(stack), stack[-1].name,
                   attrs if attrs is not None else {})
        else:
            row = (name, cat, track, start, end, 0, "",
                   attrs if attrs is not None else {})
        self._span_rows.append(row)
        if self._sinks:
            self._fan_out_span()

    def emit_span(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        end: float,
        **attrs: AttrValue,
    ) -> SpanRecord:
        """Record a completed interval (timestamps chosen by the caller)."""
        self.span(name, cat, track, start, end, attrs)
        return self.spans[-1]

    def begin(self, name: str, cat: str, track: str, **attrs: AttrValue) -> None:
        """Open a nested span on ``track`` starting now."""
        stack = self._open.setdefault(track, [])
        parent = stack[-1].name if stack else ""
        stack.append(_OpenSpan(name, cat, track, self.now, len(stack), parent, dict(attrs)))

    def end(self, track: str, **attrs: AttrValue) -> SpanRecord:
        """Close the innermost open span on ``track`` at the current time."""
        stack = self._open.get(track)
        if not stack:
            raise RuntimeError(f"no open span on track {track!r}")
        top = stack.pop()
        top.attrs.update(attrs)
        self._span_rows.append(
            (top.name, top.cat, top.track, top.start, self.now, top.depth,
             top.parent, top.attrs)
        )
        if self._sinks:
            self._fan_out_span()
        return self.spans[-1]

    def open_depth(self, track: str) -> int:
        """Number of currently open spans on ``track``."""
        stack = self._open.get(track)
        return len(stack) if stack else 0

    # ------------------------------------------------------------------
    # Counters / gauges / marks
    # ------------------------------------------------------------------
    def counter(self, name: str, track: str = "") -> Counter:
        """Get-or-create the monotonic counter ``name`` on ``track``."""
        found = self._series.get((name, track, True))
        if found is None:
            found = Counter(self, name, track)
            self._series[(name, track, True)] = found
        assert isinstance(found, Counter)
        return found

    def gauge(self, name: str, track: str = "") -> Gauge:
        """Get-or-create the two-way gauge ``name`` on ``track``."""
        found = self._series.get((name, track, False))
        if found is None:
            found = Gauge(self, name, track)
            self._series[(name, track, False)] = found
        assert isinstance(found, Gauge)
        return found

    def mark(self, name: str, track: str = "", **attrs: AttrValue) -> MarkRecord:
        """Record an instant event at the current time."""
        rec = MarkRecord(name, track, self.now, attrs)
        self._marks.append(rec)
        for sink in self._sinks:
            sink.on_mark(rec)
        return rec

    # ------------------------------------------------------------------
    # Sink fan-out (forces materialization of the newest record)
    # ------------------------------------------------------------------
    def _fan_out_span(self) -> None:
        rec = self.spans[-1]
        for sink in self._sinks:
            sink.on_span(rec)

    def _fan_out_counter(self) -> None:
        sample = self.counters[-1]
        for sink in self._sinks:
            sink.on_counter(sample)

    # ------------------------------------------------------------------
    # Views (materialized incrementally from the raw rows)
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[SpanRecord]:
        view, rows = self._spans_view, self._span_rows
        if len(view) != len(rows):
            view.extend(SpanRecord(*row) for row in rows[len(view):])
        return view

    @property
    def counters(self) -> list[CounterSample]:
        view, rows = self._counters_view, self._counter_rows
        if len(view) != len(rows):
            view.extend(CounterSample(*row) for row in rows[len(view):])
        return view

    @property
    def marks(self) -> list[MarkRecord]:
        return self._marks

    @property
    def span_rows(self) -> list[SpanRow]:
        """Raw span rows ``(name, cat, track, start, end, depth, parent,
        attrs)`` — the zero-copy view for hot folding loops.  Treat as
        read-only and append-only."""
        return self._span_rows

    @property
    def counter_rows(self) -> list[CounterRow]:
        """Raw counter rows ``(name, track, time, value)``; read-only."""
        return self._counter_rows

    def spans_by_cat(self, *cats: str) -> Iterator[SpanRecord]:
        """Spans whose category is one of ``cats``, in emission order."""
        wanted = frozenset(cats)
        return (s for s in self.spans if s.cat in wanted)

    def counter_totals(self) -> dict[str, float]:
        """Final value of every counter/gauge series, keyed ``track/name``.

        The service layer's replay tests and the ``serve`` CLI summary
        both want "how did every series end up", not the sample streams.
        """
        totals: dict[str, float] = {}
        for name, track, _time, value in self._counter_rows:
            totals[f"{track}/{name}" if track else name] = value
        return totals

    def digest(self) -> str:
        """SHA-256 over every raw row — the byte-identity fingerprint.

        Two runs are *replays of each other* exactly when their digests
        match: every span, counter sample, and mark, with its timestamp
        and attributes, in emission order.
        """
        import hashlib

        h = hashlib.sha256()
        for crow in self._counter_rows:
            h.update(repr(crow).encode())
        for srow in self._span_rows:
            h.update(repr(srow[:7]).encode())
            h.update(repr(sorted(srow[7].items())).encode())
        for m in self._marks:
            h.update(
                f"{m.name}|{m.track}|{m.time!r}|{sorted(m.attrs.items())!r}".encode()
            )
        return h.hexdigest()

    def __repr__(self) -> str:
        return (
            f"TelemetryBus({len(self._span_rows)} span(s), "
            f"{len(self._counter_rows)} counter sample(s), "
            f"{len(self._marks)} mark(s))"
        )
