"""The unified simulation runtime: event kernel + telemetry bus.

Every simulator in the repo — the flow-level network model behind
``simulate_plan``, the pipeline executors (plain and interleaved), and
the elastic-recovery supervisor — executes on one discrete-event
:class:`Kernel` and reports what happened through one structured
:class:`TelemetryBus`.  Timelines, Gantt charts, Chrome traces, and the
result objects' ``timeline``/``comms``/``trace`` views are all *derived*
from the bus's span stream; no executor keeps private bookkeeping lists
anymore.

Layout:

* :mod:`repro.runtime.kernel` — heap-scheduled events, simulated clock,
  named resources (the generalization of the old ``sim/events`` loop);
* :mod:`repro.runtime.resources` — FIFO token pools and serial
  reservation channels;
* :mod:`repro.runtime.telemetry` — spans, counters, gauges, marks, and
  pluggable sinks;
* :mod:`repro.runtime.trace` — Chrome-trace / JSONL export of a bus and
  the ``last run`` persistence behind ``python -m repro trace``.
"""

from .kernel import Event, EventLoop, Kernel
from .resources import Resource, SerialChannel
from .telemetry import (
    Counter,
    CounterSample,
    Gauge,
    MarkRecord,
    MemorySink,
    SpanRecord,
    TelemetryBus,
    TelemetrySink,
)
from .trace import (
    chrome_trace_events,
    last_run_path,
    read_jsonl,
    save_last_run,
    write_chrome_trace_file,
    write_jsonl,
)

__all__ = [
    "Event",
    "EventLoop",
    "Kernel",
    "Resource",
    "SerialChannel",
    "TelemetryBus",
    "TelemetrySink",
    "MemorySink",
    "SpanRecord",
    "CounterSample",
    "MarkRecord",
    "Counter",
    "Gauge",
    "chrome_trace_events",
    "write_chrome_trace_file",
    "write_jsonl",
    "read_jsonl",
    "save_last_run",
    "last_run_path",
]
