"""Resource primitives for the event kernel.

Two complementary models of contention:

* :class:`Resource` — a FIFO token pool.  Callers ``acquire`` a token
  (granted immediately when available, otherwise queued) and
  ``release`` it when done; queued waiters are granted in FIFO order at
  the release instant via a zero-delay kernel event, which keeps grant
  order deterministic under the kernel's ``(time, seq)`` tie-breaking.
  Good for devices and bounded-concurrency stages.

* :class:`SerialChannel` — a capacity-1 *reservation ledger* over
  simulated time: ``reserve(ready, duration)`` books the earliest
  interval starting at or after ``ready`` once everything previously
  booked has drained, and returns its start.  This is the executable
  form of the pipeline executors' FIFO channel rule
  ``start = max(ready, channel_free)`` and is exact — no events fire,
  so reserving cannot perturb the schedule that prices it.

Both are owned by a :class:`~repro.runtime.kernel.Kernel` and looked up
by name (``kernel.resource("nic:3")``, ``kernel.channel("0->1:fwd")``),
so traces and debuggers see one consistent namespace.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel

__all__ = ["Resource", "SerialChannel"]


class Resource:
    """A named FIFO token pool on the kernel."""

    def __init__(self, kernel: "Kernel", name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        #: tokens free right now — a plain attribute (not a property)
        #: because executors poll it once per scheduling decision
        self.available = capacity
        self._waiters: deque[Callable[[], None]] = deque()

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    @property
    def waiting(self) -> int:
        """Callers queued behind the pool."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    def try_acquire(self) -> bool:
        """Take a token if one is free; never queues."""
        if self.available > 0:
            self.available -= 1
            return True
        return False

    def acquire(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` holding a token: now if free, else FIFO-queued.

        An immediately available token grants synchronously (``fn`` runs
        before ``acquire`` returns); a queued grant runs from a
        zero-delay event scheduled at the release instant.
        """
        if self.available > 0:
            self.available -= 1
            fn()
        else:
            self._waiters.append(fn)

    def release(self) -> None:
        """Return a token; hand it straight to the oldest waiter if any."""
        if self.available >= self.capacity and not self._waiters:
            raise RuntimeError(f"resource {self.name!r}: release without acquire")
        if self._waiters:
            fn = self._waiters.popleft()
            # Zero-delay event: the grant happens at the same simulated
            # time but outside the releasing callback's stack frame.
            self.kernel.call_after(0.0, fn)
        else:
            self.available += 1

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} in use, "
            f"{self.waiting} waiting)"
        )


class SerialChannel:
    """A capacity-1 FIFO reservation ledger over simulated time."""

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.free_at = 0.0
        self.n_reservations = 0
        self.busy_time = 0.0

    def reserve(self, ready: float, duration: float) -> float:
        """Book ``duration`` seconds starting no earlier than ``ready``.

        Returns the booked start time: ``max(ready, free_at)``, i.e. the
        channel serves reservations strictly in request order.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        start = ready if ready > self.free_at else self.free_at
        self.free_at = start + duration
        self.n_reservations += 1
        self.busy_time += duration
        return start

    def __repr__(self) -> str:
        return (
            f"SerialChannel({self.name!r}, free_at={self.free_at:.6f}, "
            f"{self.n_reservations} reservation(s))"
        )
