"""Workload cost models for the end-to-end evaluation (paper §5.2)."""

from .costs import (
    BYTES,
    DeviceModel,
    V100,
    conv2d_flops_fwd,
    conv2d_params,
    ring_allreduce_time,
    transformer_layer_flops_fwd,
    transformer_layer_params,
)
from .gpt import GPT_CASES, GPTConfig, build_gpt, gpt_layer_memory_table
from .inference import InferenceResult, forward_only_orders, run_inference
from .moe import MoEConfig, build_moe, dispatch_all_to_all_time, moe_params
from .parallel import (
    Boundary,
    E2EResult,
    METHODS,
    MethodSpec,
    ParallelJobSpec,
    resolve_comm_edges,
    run_iteration,
)
from .utransformer import (
    UTransformerConfig,
    balanced_split,
    build_utransformer,
    utransformer_modules,
    utransformer_params,
)

__all__ = [
    "DeviceModel",
    "V100",
    "BYTES",
    "transformer_layer_flops_fwd",
    "transformer_layer_params",
    "conv2d_flops_fwd",
    "conv2d_params",
    "ring_allreduce_time",
    "GPTConfig",
    "GPT_CASES",
    "build_gpt",
    "gpt_layer_memory_table",
    "MoEConfig",
    "build_moe",
    "moe_params",
    "dispatch_all_to_all_time",
    "InferenceResult",
    "run_inference",
    "forward_only_orders",
    "UTransformerConfig",
    "build_utransformer",
    "utransformer_modules",
    "utransformer_params",
    "balanced_split",
    "Boundary",
    "ParallelJobSpec",
    "MethodSpec",
    "METHODS",
    "resolve_comm_edges",
    "run_iteration",
    "E2EResult",
]
