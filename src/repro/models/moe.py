"""Mixture-of-Experts transformer workload (GShard-style).

A third end-to-end model exercising parts of the library the paper's
two workloads do not:

* **expert parallelism**: stage meshes carry experts sharded along a
  mesh axis, paying two intra-mesh all-to-alls per MoE layer (token
  dispatch and return), timed on the flow simulator;
* **layout-changing boundary**: stage 0 shards activations along the
  *batch* axis over its ``(dp, ep)`` mesh while stage 1 shards along
  the *sequence* axis over a ``(dp*ep, 1)`` mesh (TeraPipe-style
  token-level sharding for its attention).  The boundary resharding
  therefore has orthogonal source/destination tilings — the
  general many-to-many setting of §2.2 (like Table 2's case 4) inside
  an end-to-end job.

Cost model follows GShard/Switch conventions: alternating dense and MoE
layers; each MoE layer routes every token to ``top_k`` of ``E``
experts; expert weights are sharded so each device stores ``E / ep``
experts but computes the ``top_k / (dp*ep)`` share of routed tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mesh import DeviceMesh
from ..pipeline.stage import StageProfile
from ..sim.cluster import Cluster, ClusterSpec
from ..sim.collectives import all_to_all
from ..sim.network import Network
from .costs import BYTES, DeviceModel, V100, ring_allreduce_time
from .parallel import Boundary, ParallelJobSpec

__all__ = ["MoEConfig", "build_moe", "moe_params", "dispatch_all_to_all_time"]


@dataclass(frozen=True)
class MoEConfig:
    """An MoE transformer sized for the 8-GPU simulated testbed."""

    name: str = "MoE-2.8B"
    n_layers: int = 16  # alternating dense / MoE
    hidden: int = 2048
    n_experts: int = 8
    top_k: int = 2
    seq_len: int = 1024
    vocab: int = 51200
    global_batch: int = 512
    #: batch rows of one micro-batch, per device (batch axis fully
    #: sharded across each stage's devices)
    micro_batch_per_device: int = 2
    precision: str = "fp16"
    dp: int = 2
    ep: int = 2  # expert-parallel degree (stage-0 mesh columns)
    pp: int = 2

    def __post_init__(self) -> None:
        if self.n_layers % (2 * self.pp) != 0:
            raise ValueError("n_layers must divide into pp stages of layer pairs")
        if self.n_experts % self.ep != 0:
            raise ValueError("experts must divide by expert parallel degree")
        if self.global_batch % self.microbatch_rows != 0:
            raise ValueError("global batch must divide into micro batches")

    @property
    def devices_per_stage(self) -> int:
        return self.dp * self.ep

    @property
    def n_devices(self) -> int:
        return self.devices_per_stage * self.pp

    @property
    def microbatch_rows(self) -> int:
        """Global batch rows of one micro-batch."""
        return self.micro_batch_per_device * self.devices_per_stage

    @property
    def n_microbatches(self) -> int:
        return self.global_batch // self.microbatch_rows


def moe_params(cfg: MoEConfig) -> float:
    """Total parameters: dense layers + E experts per MoE layer."""
    dense_layers = cfg.n_layers // 2
    moe_layers = cfg.n_layers - dense_layers
    dense = dense_layers * 12.0 * cfg.hidden**2
    # attention (4 H^2) + E expert FFNs (8 H^2 each)
    moe = moe_layers * (4.0 * cfg.hidden**2 + cfg.n_experts * 8.0 * cfg.hidden**2)
    return dense + moe + cfg.vocab * cfg.hidden


def dispatch_all_to_all_time(cfg: MoEConfig, mesh: DeviceMesh) -> float:
    """Simulated time of one expert-dispatch all-to-all on ``mesh``.

    Each device holds ``micro_batch_per_device * S`` tokens and routes
    ``top_k`` copies of each, spread uniformly over the group: per-pair
    payload ``top_k * b_dev * S * H * itemsize / group``.
    """
    group = list(mesh.devices)
    if len(group) <= 1:
        return 0.0
    tokens_bytes = (
        cfg.top_k
        * cfg.micro_batch_per_device
        * cfg.seq_len
        * cfg.hidden
        * BYTES[cfg.precision]
    )
    net = Network(mesh.cluster)
    handle = all_to_all(net, group, tokens_bytes / len(group))
    net.run()
    return handle.finish_time


def build_moe(
    cfg: MoEConfig = MoEConfig(),
    device: DeviceModel = V100,
    cluster: Cluster | None = None,
) -> ParallelJobSpec:
    """Instantiate the MoE pipeline job (see module docstring)."""
    per_stage = cfg.devices_per_stage
    if cluster is None:
        cluster = Cluster(ClusterSpec(n_hosts=cfg.pp, devices_per_host=per_stage))
    if cluster.n_devices < cfg.n_devices:
        raise ValueError("cluster too small for the MoE config")

    meshes = []
    for s in range(cfg.pp):
        flat = [
            d.device_id for d in cluster.devices[s * per_stage : (s + 1) * per_stage]
        ]
        if s == 0:
            grid = [flat[i * cfg.ep : (i + 1) * cfg.ep] for i in range(cfg.dp)]
        else:
            grid = [[d] for d in flat]  # (dp*ep, 1)
        meshes.append(DeviceMesh(cluster, grid))

    layers_per_stage = cfg.n_layers // cfg.pp
    dense_per_stage = layers_per_stage // 2
    moe_per_stage = layers_per_stage - dense_per_stage
    b_dev = cfg.micro_batch_per_device
    dev_flops = device.flops(cfg.precision)

    # Per-device FLOPs over b_dev rows: dense layer = full transformer
    # layer; MoE layer = attention + top_k routed expert FFNs.
    dense_flops = 24.0 * b_dev * cfg.seq_len * cfg.hidden**2 + (
        4.0 * b_dev * cfg.seq_len**2 * cfg.hidden
    )
    attn_flops = 8.0 * b_dev * cfg.seq_len * cfg.hidden**2 + (
        4.0 * b_dev * cfg.seq_len**2 * cfg.hidden
    )
    ffn_flops = 16.0 * b_dev * cfg.seq_len * cfg.hidden**2 * cfg.top_k
    moe_flops = attn_flops + ffn_flops
    stage_flops = dense_per_stage * dense_flops + moe_per_stage * moe_flops

    profiles = []
    for s in range(cfg.pp):
        mesh = meshes[s]
        compute = stage_flops / dev_flops
        a2a = dispatch_all_to_all_time(cfg, mesh)
        compute += moe_per_stage * 2 * a2a  # dispatch + return per MoE layer
        ep_here = cfg.ep if s == 0 else per_stage  # experts spread over group
        params_stage = moe_params(cfg) / cfg.pp  # rough per-stage split
        profiles.append(
            StageProfile(
                stage_id=s,
                fwd_time=compute,
                bwd_x_time=compute,
                bwd_w_time=compute,
                params_bytes=params_stage / ep_here * 14.0,
                activation_bytes=BYTES[cfg.precision]
                * b_dev
                * cfg.seq_len
                * cfg.hidden,
            )
        )

    # Batch-sharded on stage 0 (S^{01} over its (dp, ep) mesh) ->
    # sequence-sharded on stage 1 (dim 1 over its (dp*ep, 1) mesh):
    # orthogonal tilings, a case-4-like resharding per micro-batch.
    boundaries = [
        Boundary(
            label="act0->1 (batch->sequence)",
            src_stage=0,
            dst_stage=1,
            shape=(cfg.microbatch_rows, cfg.seq_len, cfg.hidden),
            src_spec="S01RR",
            dst_spec="RS0R",
            dtype=cfg.precision,
        )
    ]

    flops_iter = 3.0 * cfg.n_microbatches * per_stage * stage_flops * cfg.pp
    epilogue = ring_allreduce_time(
        profiles[0].params_bytes / 7.0,  # fp16 grads out of 14 B/param
        cfg.dp,
        cluster.spec.intra_host_bandwidth,
    )
    return ParallelJobSpec(
        name=cfg.name,
        cluster=cluster,
        stage_meshes=meshes,
        profiles=profiles,
        boundaries=boundaries,
        n_microbatches=cfg.n_microbatches,
        model_flops_per_iteration=flops_iter,
        epilogue_time=epilogue,
        notes=f"{moe_params(cfg) / 1e9:.1f}B params, {cfg.n_experts} experts, "
        f"batch->sequence boundary across mesh shapes "
        f"({cfg.dp},{cfg.ep}) -> ({per_stage},1)",
    )
