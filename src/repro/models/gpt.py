"""GPT-3-style language model workload (paper Table 1, Table 3, Fig. 7).

A homogeneous stack of transformer layers, partitioned with the
composite (data, operator, pipeline) parallel config of Table 3.  Each
pipeline stage sends the output activation of its last transformer
layer; the tensor is partitioned along data-parallel mesh rows and
replicated across operator-parallel columns (spec ``S0RR`` over a
``(dp, op)`` mesh), exactly the paper's description in §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.mesh import DeviceMesh
from ..pipeline.stage import StageProfile
from ..sim.cluster import Cluster, ClusterSpec
from .costs import (
    BYTES,
    DeviceModel,
    V100,
    ring_allreduce_time,
    transformer_layer_flops_fwd,
    transformer_layer_params,
)
from .parallel import Boundary, ParallelJobSpec

__all__ = ["GPTConfig", "build_gpt", "gpt_layer_memory_table", "GPT_CASES"]


@dataclass(frozen=True)
class GPTConfig:
    """A GPT training configuration (defaults: the paper's 2.6B model)."""

    name: str = "GPT-2.6B"
    n_layers: int = 32
    hidden: int = 2560
    seq_len: int = 1024
    vocab: int = 51200
    global_batch: int = 1024
    #: micro-batch size per data-parallel rank (Table 1 uses B = 2)
    micro_batch_per_dp: int = 2
    precision: str = "fp16"
    dp: int = 2
    op: int = 2
    pp: int = 2

    def __post_init__(self) -> None:
        if self.n_layers % self.pp != 0:
            raise ValueError(f"{self.n_layers} layers not divisible by pp={self.pp}")
        if self.global_batch % (self.dp * self.micro_batch_per_dp) != 0:
            raise ValueError("global batch must divide into dp x micro_batch")

    # ------------------------------------------------------------------
    @property
    def n_params(self) -> float:
        """Total parameters (layers + embedding)."""
        return self.n_layers * transformer_layer_params(self.hidden) + (
            self.vocab * self.hidden
        )

    @property
    def n_devices(self) -> int:
        return self.dp * self.op * self.pp

    @property
    def n_microbatches(self) -> int:
        return self.global_batch // (self.dp * self.micro_batch_per_dp)

    @property
    def parallel_config(self) -> tuple[int, int, int]:
        return (self.dp, self.op, self.pp)

    def flops_per_iteration(self) -> float:
        """fwd + bwd FLOPs of one whole-batch iteration (3x forward)."""
        return 3.0 * self.n_layers * transformer_layer_flops_fwd(
            self.global_batch, self.seq_len, self.hidden
        )


#: Table 3's two GPT parallel configurations.
GPT_CASES = {
    "GPT case1": GPTConfig(name="GPT case1", dp=2, op=2, pp=2),
    "GPT case2": GPTConfig(name="GPT case2", dp=4, op=1, pp=2),
}


def build_gpt(
    config: GPTConfig = GPTConfig(),
    device: DeviceModel = V100,
    cluster: Cluster | None = None,
) -> ParallelJobSpec:
    """Instantiate the pipeline-parallel job for one GPT config.

    Stages occupy consecutive blocks of devices (host-aligned when the
    stage size equals the host size, as on the paper's 2-node testbed).
    """
    if cluster is None:
        dph = min(4, config.dp * config.op)
        cluster = Cluster(
            ClusterSpec(
                n_hosts=max(1, config.n_devices // dph), devices_per_host=dph
            )
        )
    if cluster.n_devices < config.n_devices:
        raise ValueError(
            f"cluster has {cluster.n_devices} devices, config needs {config.n_devices}"
        )

    per_stage = config.dp * config.op
    meshes = []
    for s in range(config.pp):
        flat = [d.device_id for d in cluster.devices[s * per_stage : (s + 1) * per_stage]]
        grid = [flat[i * config.op : (i + 1) * config.op] for i in range(config.dp)]
        meshes.append(DeviceMesh(cluster, grid))

    layers_per_stage = config.n_layers // config.pp
    b = config.micro_batch_per_dp
    dev_flops = device.flops(config.precision)
    fwd = (
        layers_per_stage
        * transformer_layer_flops_fwd(b, config.seq_len, config.hidden)
        / config.op
        / dev_flops
    )
    # Megatron operator parallelism all-reduces the activation twice per
    # layer (attention output + MLP output) in forward, and the same for
    # the input gradients in backward.  The group is one mesh row; when
    # it stays inside a host this runs over NVLink, across hosts it is
    # expensive (which is what rules out wide cross-host op parallelism).
    op_allreduce = 0.0
    if config.op > 1:
        row_devices = [meshes[0].device_at(0, j) for j in range(config.op)]
        bw = cluster.topo.group_bandwidth(cluster.hosts_of(row_devices))
        act_msg = BYTES[config.precision] * b * config.seq_len * config.hidden
        op_allreduce = layers_per_stage * 2.0 * ring_allreduce_time(
            act_msg, config.op, bw
        )
    fwd += op_allreduce
    layer_bytes_per_param = 14.0  # fp16 param+grad + fp32 master+m+v (Table 1)
    params_dev = (
        layers_per_stage * transformer_layer_params(config.hidden) / config.op
    )
    act_bytes = BYTES[config.precision] * b * config.seq_len * config.hidden

    profiles = [
        StageProfile(
            stage_id=s,
            fwd_time=fwd,
            bwd_x_time=fwd,  # dgrad: same GEMMs + the op all-reduces
            bwd_w_time=fwd - op_allreduce,  # wgrad needs no op all-reduce
            params_bytes=params_dev * layer_bytes_per_param,
            activation_bytes=act_bytes,
        )
        for s in range(config.pp)
    ]

    boundaries = [
        Boundary(
            label=f"act{s}->{s + 1}",
            src_stage=s,
            dst_stage=s + 1,
            shape=(config.dp * b, config.seq_len, config.hidden),
            src_spec="S0RR",
            dst_spec="S0RR",
            dtype=config.precision,
        )
        for s in range(config.pp - 1)
    ]

    # Data-parallel gradient all-reduce at the end of the iteration.
    grad_bytes = params_dev * BYTES[config.precision]
    epilogue = 0.0
    if config.dp > 1:
        mesh0 = meshes[0]
        bw = cluster.topo.group_bandwidth(cluster.hosts_of(mesh0.devices))
        epilogue = ring_allreduce_time(grad_bytes, config.dp, bw)

    return ParallelJobSpec(
        name=config.name,
        cluster=cluster,
        stage_meshes=meshes,
        profiles=profiles,
        boundaries=boundaries,
        n_microbatches=config.n_microbatches,
        model_flops_per_iteration=config.flops_per_iteration(),
        epilogue_time=epilogue,
        notes=f"parallel config {config.parallel_config}, "
        f"{config.n_params / 1e9:.1f}B params",
    )


@dataclass(frozen=True)
class GPTLayerMemory:
    """One row set of the paper's Table 1 (values in binary units)."""

    n_parameters: float
    n_optimizer_params: float
    n_activation_elements: float
    weights_and_optimizer_bytes: float
    activation_bytes: float
    expressions: dict[str, str] = field(
        default_factory=lambda: {
            "n_parameters": "12 H^2 / TMP",
            "n_optimizer_params": "24 H^2 / TMP",
            "n_activation_elements": "B S H",
            "weights_and_optimizer_bytes": "168 H^2 / TMP",
            "activation_bytes": "2 B S H",
        }
    )


def gpt_layer_memory_table(
    seq_len: int = 1024,
    hidden: int = 12288,
    micro_batch: int = 2,
    tmp: int = 8,
) -> GPTLayerMemory:
    """Table 1: per-GPU sizes for one GPT-3 layer in mixed precision.

    Defaults are the paper's (S=1024, H=12288, B=2, TMP=8), giving
    216 Mi parameters, 432 Mi optimizer params, 24 Mi activation
    elements, 2.95 GiB of weights+optimizer and 48 MiB of activations.
    """
    h2 = float(hidden) * hidden
    return GPTLayerMemory(
        n_parameters=12.0 * h2 / tmp,
        n_optimizer_params=24.0 * h2 / tmp,
        n_activation_elements=float(micro_batch) * seq_len * hidden,
        weights_and_optimizer_bytes=168.0 * h2 / tmp,
        activation_bytes=2.0 * micro_batch * seq_len * hidden,
    )
