"""U-Transformer workload (paper Table 3, Fig. 7, Fig. 9).

A U-shaped convolutional network with attention (Petit et al., 2021):
encoder levels downsample while widening channels, a transformer
bottleneck, then decoder levels upsample, each consuming the *long skip
connection* from its encoder counterpart plus a self/cross-attention
block.  When the network is pipeline-partitioned into two stages, every
skip whose encoder end and decoder end land on different stages becomes
an extra cross-mesh resharding per micro-batch — the property that makes
communication the bottleneck in the paper's end-to-end evaluation.

The module sequence is split into two contiguous stages balanced by
FLOPs (the paper: "we balance pipeline stages with respect to FLOPs"),
and the intra-op plan is data-parallel over each stage's 4-GPU mesh
(standing in for Alpa's "auto" plan, which picks batch sharding for
convolutions at these sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.mesh import DeviceMesh
from ..pipeline.stage import StageProfile
from ..sim.cluster import Cluster, ClusterSpec
from .costs import DeviceModel, V100, conv2d_flops_fwd, conv2d_params, ring_allreduce_time
from .parallel import Boundary, ParallelJobSpec

__all__ = [
    "UTransformerConfig",
    "Module",
    "utransformer_modules",
    "utransformer_params",
    "build_utransformer",
    "balanced_split",
]


@dataclass(frozen=True)
class UTransformerConfig:
    """Defaults sized to roughly the paper's 2.1B-parameter model."""

    name: str = "U-Transformer-2.1B"
    image_size: int = 32
    in_channels: int = 3
    #: encoder channel widths, highest resolution first
    channels: tuple[int, ...] = (2048, 4096)
    bottleneck_channels: int = 4096
    bottleneck_attn_layers: int = 2
    #: self/cross-attention blocks per decoder level (the "Transformer"
    #: part of U-Transformer)
    skip_attn_layers: int = 3
    global_batch: int = 2048
    micro_batch: int = 8
    precision: str = "fp32"
    dp: int = 4

    def __post_init__(self) -> None:
        if self.image_size % (2 ** len(self.channels)) != 0:
            raise ValueError("image size must be divisible by 2^levels")
        if self.micro_batch % self.dp != 0:
            raise ValueError("micro batch must divide by dp")
        if self.global_batch % self.micro_batch != 0:
            raise ValueError("global batch must divide into micro batches")

    @property
    def n_levels(self) -> int:
        return len(self.channels)

    @property
    def n_microbatches(self) -> int:
        return self.global_batch // self.micro_batch

    @property
    def n_devices(self) -> int:
        return 2 * self.dp


@dataclass(frozen=True)
class Module:
    """One sequential block of the network."""

    name: str
    flops_fwd: float  # per micro-batch
    params: float
    #: output feature map (channels, spatial) — the sequential activation
    out_channels: int
    out_spatial: int
    #: encoder level index whose skip this module *produces* (or None)
    skip_out: Optional[int] = None
    #: encoder level index whose skip this module *consumes* (or None)
    skip_in: Optional[int] = None


def _attn_flops(batch: int, tokens: int, hidden: int) -> float:
    """One transformer block: ``24 B T H^2`` GEMMs + ``4 B T^2 H`` scores."""
    return 24.0 * batch * tokens * hidden**2 + 4.0 * batch * tokens**2 * hidden


def utransformer_modules(cfg: UTransformerConfig) -> list[Module]:
    """The sequential module list: encoder, bottleneck, decoder.

    Attention blocks are emitted as separate modules so the FLOP-balanced
    two-way split (the paper's stage partition) has fine-grained cut
    points to choose from.
    """
    b = cfg.micro_batch
    mods: list[Module] = []
    # ---- encoder ------------------------------------------------------
    c_prev = cfg.in_channels
    for lvl, c in enumerate(cfg.channels):
        s = cfg.image_size >> lvl
        hw = s * s
        flops = conv2d_flops_fwd(b, c_prev, c, hw) + conv2d_flops_fwd(b, c, c, hw)
        params = conv2d_params(c_prev, c) + conv2d_params(c, c)
        mods.append(
            Module(
                name=f"enc{lvl}",
                flops_fwd=flops,
                params=params,
                out_channels=c,
                out_spatial=s,
                skip_out=lvl,
            )
        )
        c_prev = c
    # ---- bottleneck ----------------------------------------------------
    cb = cfg.bottleneck_channels
    s = cfg.image_size >> cfg.n_levels
    hw = s * s
    mods.append(
        Module(
            name="bottleneck_conv",
            flops_fwd=conv2d_flops_fwd(b, c_prev, cb, hw),
            params=conv2d_params(c_prev, cb),
            out_channels=cb,
            out_spatial=s,
        )
    )
    for i in range(cfg.bottleneck_attn_layers):
        mods.append(
            Module(
                name=f"bottleneck_attn{i}",
                flops_fwd=_attn_flops(b, hw, cb),
                params=12.0 * cb * cb,
                out_channels=cb,
                out_spatial=s,
            )
        )
    # ---- decoder -------------------------------------------------------
    c_above = cb
    for lvl in reversed(range(cfg.n_levels)):
        c = cfg.channels[lvl]
        s = cfg.image_size >> lvl
        hw = s * s
        # 2x2 transposed conv upsampling, then the concat conv fusing the
        # level's skip with the upsampled features.
        mods.append(
            Module(
                name=f"dec{lvl}",
                flops_fwd=conv2d_flops_fwd(b, c_above, c, hw, kernel=2)
                + conv2d_flops_fwd(b, 2 * c, c, hw),
                params=conv2d_params(c_above, c, kernel=2)
                + conv2d_params(2 * c, c),
                out_channels=c,
                out_spatial=s,
                skip_in=lvl,
            )
        )
        for i in range(cfg.skip_attn_layers):
            mods.append(
                Module(
                    name=f"dec{lvl}_attn{i}",
                    flops_fwd=_attn_flops(b, hw, c),
                    params=12.0 * c * c,
                    out_channels=c,
                    out_spatial=s,
                )
            )
        c_above = c
    return mods


def utransformer_params(cfg: UTransformerConfig) -> float:
    """Total parameter count of the network."""
    return sum(m.params for m in utransformer_modules(cfg))


def balanced_split(mods: list[Module]) -> int:
    """Cut index k (stage0 = mods[:k]) minimizing FLOP imbalance."""
    total = sum(m.flops_fwd for m in mods)
    best_k, best_gap = 1, float("inf")
    acc = 0.0
    for k in range(1, len(mods)):
        acc += mods[k - 1].flops_fwd
        gap = abs(acc - (total - acc))
        if gap < best_gap:
            best_gap, best_k = gap, k
    return best_k


def build_utransformer(
    cfg: UTransformerConfig = UTransformerConfig(),
    device: DeviceModel = V100,
    cluster: Cluster | None = None,
) -> ParallelJobSpec:
    """Instantiate the two-stage pipeline job for the U-Transformer."""
    if cluster is None:
        cluster = Cluster(ClusterSpec(n_hosts=2, devices_per_host=cfg.dp))
    if cluster.n_devices < cfg.n_devices:
        raise ValueError("cluster too small for 2 stages of dp devices")

    meshes = [
        DeviceMesh(
            cluster,
            [[cluster.hosts[h].devices[i].device_id] for i in range(cfg.dp)],
        )
        for h in range(2)
    ]  # (dp, 1) meshes, one host per stage

    mods = utransformer_modules(cfg)
    k = balanced_split(mods)
    stage_mods = [mods[:k], mods[k:]]

    dev_flops = device.flops(cfg.precision)
    itemsize = 4 if cfg.precision == "fp32" else 2
    profiles = []
    for sid, group in enumerate(stage_mods):
        fwd = sum(m.flops_fwd for m in group) / cfg.dp / dev_flops
        params = sum(m.params for m in group)
        # fp32 Adam: param + grad + m + v, replicated across dp ranks
        params_bytes = params * 16.0
        act_bytes = sum(
            # repro-lint: allow[L004] model-card estimate, not a plan byte count
            m.out_channels * m.out_spatial**2 * (cfg.micro_batch // cfg.dp) * itemsize
            for m in group
        )
        profiles.append(
            StageProfile(
                stage_id=sid,
                fwd_time=fwd,
                bwd_x_time=fwd,
                bwd_w_time=fwd,
                params_bytes=params_bytes,
                activation_bytes=act_bytes,
            )
        )

    spec_str = "S0RRR"  # batch-sharded feature maps (B, C, H, W)
    boundaries = []
    # Sequential activation at the cut.
    last = stage_mods[0][-1]
    boundaries.append(
        Boundary(
            label=f"seq:{last.name}",
            src_stage=0,
            dst_stage=1,
            shape=(cfg.micro_batch, last.out_channels, last.out_spatial, last.out_spatial),
            src_spec=spec_str,
            dst_spec=spec_str,
            dtype=cfg.precision,
        )
    )
    # Long skip connections whose producer and consumer straddle the cut.
    producers = {m.skip_out: m for m in stage_mods[0] if m.skip_out is not None}
    for m in stage_mods[1]:
        if m.skip_in is not None and m.skip_in in producers:
            p = producers[m.skip_in]
            boundaries.append(
                Boundary(
                    label=f"skip{m.skip_in}",
                    src_stage=0,
                    dst_stage=1,
                    shape=(cfg.micro_batch, p.out_channels, p.out_spatial, p.out_spatial),
                    src_spec=spec_str,
                    dst_spec=spec_str,
                    dtype=cfg.precision,
                )
            )

    total_fwd = sum(m.flops_fwd for m in mods)
    epilogue = ring_allreduce_time(
        # repro-lint: allow[L004] model-card estimate, not a plan byte count
        sum(m.params for m in mods) / 2 * itemsize,  # per-stage grads, rough
        cfg.dp,
        cluster.spec.intra_host_bandwidth,
    )
    return ParallelJobSpec(
        name=cfg.name,
        cluster=cluster,
        stage_meshes=meshes,
        profiles=profiles,
        boundaries=boundaries,
        n_microbatches=cfg.n_microbatches,
        model_flops_per_iteration=3.0 * total_fwd * cfg.n_microbatches,
        epilogue_time=epilogue,
        notes=f"{utransformer_params(cfg) / 1e9:.2f}B params, "
        f"split after {stage_mods[0][-1].name}, "
        f"{len(boundaries) - 1} cross-mesh skip(s)",
    )
