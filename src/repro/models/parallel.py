"""Glue between model cost models, the resharding library, and the
pipeline executor: build a pipeline job whose cross-mesh communication
times come from simulating the actual boundary resharding tasks under a
chosen strategy, then run one training iteration under a chosen
schedule.

The ``METHODS`` table defines the named systems compared in the paper's
end-to-end evaluation (Fig. 7) and overlap ablation (Fig. 9):

=============  ==========  ===========  =======  ============
method         strategy    schedule     overlap  bwd-w delay
=============  ==========  ===========  =======  ============
send_recv      send_recv   1F1B         no       no
alpa           allgather   1F1B         no       no
broadcast      broadcast   1F1B         no       no
overlap        broadcast   1F1B         yes      no
ours           broadcast   eager-1F1B   yes      no
ours_delay     broadcast   eager-1F1B   yes      yes
signal         signal      1F1B         yes      no
=============  ==========  ===========  =======  ============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.executor import simulate_plan
from ..core.mesh import DeviceMesh
from ..core.task import ReshardingTask
from ..pipeline.executor import PipelineResult, simulate_pipeline
from ..pipeline.schedules import schedule_job
from ..pipeline.stage import CommEdge, PipelineJob, StageProfile
from ..sim.cluster import Cluster
from ..strategies import make_strategy

__all__ = [
    "Boundary",
    "ParallelJobSpec",
    "MethodSpec",
    "METHODS",
    "resolve_comm_edges",
    "run_iteration",
    "E2EResult",
]


@dataclass(frozen=True)
class Boundary:
    """One tensor crossing between two pipeline stages, per micro-batch."""

    label: str
    src_stage: int
    dst_stage: int
    shape: tuple[int, ...]
    src_spec: str
    dst_spec: str
    dtype: str = "fp32"  # "fp16" | "fp32"

    def nbytes(self) -> float:
        n = 1
        for s in self.shape:
            n *= s
        return n * (2 if self.dtype == "fp16" else 4)


@dataclass
class ParallelJobSpec:
    """A model-parallel training job before communication resolution."""

    name: str
    cluster: Cluster
    stage_meshes: list[DeviceMesh]
    profiles: list[StageProfile]
    boundaries: list[Boundary]
    n_microbatches: int
    model_flops_per_iteration: float
    #: per-iteration epilogue outside the pipeline (dp gradient sync)
    epilogue_time: float = 0.0
    notes: str = ""

    @property
    def n_devices(self) -> int:
        return sum(m.n_devices for m in self.stage_meshes)


@dataclass(frozen=True)
class MethodSpec:
    """One named end-to-end system configuration."""

    strategy: str
    schedule: str
    overlap: bool
    delay_bw_weight: bool


METHODS: dict[str, MethodSpec] = {
    "send_recv": MethodSpec("send_recv", "1f1b", overlap=False, delay_bw_weight=False),
    "alpa": MethodSpec("allgather", "1f1b", overlap=False, delay_bw_weight=False),
    "broadcast": MethodSpec("broadcast", "1f1b", overlap=False, delay_bw_weight=False),
    "overlap": MethodSpec("broadcast", "1f1b", overlap=True, delay_bw_weight=False),
    "ours": MethodSpec("broadcast", "eager_1f1b", overlap=True, delay_bw_weight=False),
    "ours_delay": MethodSpec(
        "broadcast", "eager_1f1b", overlap=True, delay_bw_weight=True
    ),
    "signal": MethodSpec("signal", "1f1b", overlap=True, delay_bw_weight=False),
}


def _np_dtype(name: str):
    return np.float16 if name == "fp16" else np.float32


def resolve_comm_edges(spec: ParallelJobSpec, strategy_name: str) -> list[CommEdge]:
    """Simulate each boundary resharding (both directions) once.

    Every micro-batch reshards the same tensor with the same layout, so
    one simulation per (boundary, direction) gives the per-micro-batch
    communication duration the pipeline executor needs.
    """
    strategy = make_strategy(strategy_name)
    edges: list[CommEdge] = []
    for b in spec.boundaries:
        src_mesh = spec.stage_meshes[b.src_stage]
        dst_mesh = spec.stage_meshes[b.dst_stage]
        fwd_task = ReshardingTask(
            b.shape, src_mesh, b.src_spec, dst_mesh, b.dst_spec,
            dtype=_np_dtype(b.dtype),
        )
        fwd_time = simulate_plan(strategy.plan(fwd_task)).total_time
        bwd_task = ReshardingTask(
            b.shape, dst_mesh, b.dst_spec, src_mesh, b.src_spec,
            dtype=_np_dtype(b.dtype),
        )
        bwd_time = simulate_plan(strategy.plan(bwd_task)).total_time
        edges.append(
            CommEdge(
                src_stage=b.src_stage,
                dst_stage=b.dst_stage,
                fwd_time=fwd_time,
                bwd_time=bwd_time,
                fwd_bytes=b.nbytes(),
                bwd_bytes=b.nbytes(),
                label=b.label,
            )
        )
    return edges


@dataclass
class E2EResult:
    """One end-to-end training-iteration measurement."""

    method: str
    iteration_time: float
    throughput_tflops: float
    pipeline: PipelineResult = field(repr=False)
    comm_edges: list[CommEdge] = field(repr=False, default_factory=list)


def run_iteration(
    spec: ParallelJobSpec,
    method: str,
    method_spec: Optional[MethodSpec] = None,
) -> E2EResult:
    """Simulate one training iteration of ``spec`` under a named method."""
    ms = method_spec if method_spec is not None else METHODS[method]
    edges = resolve_comm_edges(spec, ms.strategy)
    job = PipelineJob(
        stages=spec.profiles, edges=edges, n_microbatches=spec.n_microbatches
    )
    orders = schedule_job(
        ms.schedule,
        n_stages=len(spec.profiles),
        n_microbatches=spec.n_microbatches,
        delay_bw_weight=ms.delay_bw_weight,
    )
    result = simulate_pipeline(job, orders, overlap=ms.overlap)
    iter_time = result.iteration_time + spec.epilogue_time
    tflops = spec.model_flops_per_iteration / iter_time / spec.n_devices / 1e12
    return E2EResult(
        method=method,
        iteration_time=iter_time,
        throughput_tflops=tflops,
        pipeline=result,
        comm_edges=edges,
    )
