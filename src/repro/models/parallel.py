"""Glue between model cost models, the resharding library, and the
pipeline executor: build a pipeline job whose cross-mesh communication
times come from simulating the actual boundary resharding tasks under a
chosen strategy, then run one training iteration under a chosen
schedule.

The ``METHODS`` table defines the named systems compared in the paper's
end-to-end evaluation (Fig. 7) and overlap ablation (Fig. 9):

=============  ==========  ===========  =======  ============
method         strategy    schedule     overlap  bwd-w delay
=============  ==========  ===========  =======  ============
send_recv      send_recv   1F1B         no       no
alpa           allgather   1F1B         no       no
broadcast      broadcast   1F1B         no       no
overlap        broadcast   1F1B         yes      no
ours           broadcast   eager-1F1B   yes      no
ours_delay     broadcast   eager-1F1B   yes      yes
signal         signal      1F1B         yes      no
=============  ==========  ===========  =======  ============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..compiler import USE_DEFAULT_CACHE, CompileContext, EdgeResharding
from ..core.mesh import DeviceMesh
from ..core.task import ReshardingTask
from ..pipeline.executor import PipelineResult, simulate_pipeline
from ..pipeline.schedules import schedule_job
from ..pipeline.stage import CommEdge, PipelineJob, StageProfile
from ..sim.cluster import Cluster
from ..strategies import make_strategy

__all__ = [
    "Boundary",
    "ParallelJobSpec",
    "MethodSpec",
    "METHODS",
    "resolve_comm_edges",
    "run_iteration",
    "E2EResult",
]


@dataclass(frozen=True)
class Boundary:
    """One tensor crossing between two pipeline stages, per micro-batch."""

    label: str
    src_stage: int
    dst_stage: int
    shape: tuple[int, ...]
    src_spec: str
    dst_spec: str
    dtype: str = "fp32"  # "fp16" | "fp32"

    def nbytes(self) -> float:
        n = 1
        for s in self.shape:
            n *= s
        return n * (2 if self.dtype == "fp16" else 4)


@dataclass
class ParallelJobSpec:
    """A model-parallel training job before communication resolution."""

    name: str
    cluster: Cluster
    stage_meshes: list[DeviceMesh]
    profiles: list[StageProfile]
    boundaries: list[Boundary]
    n_microbatches: int
    model_flops_per_iteration: float
    #: per-iteration epilogue outside the pipeline (dp gradient sync)
    epilogue_time: float = 0.0
    notes: str = ""

    @property
    def n_devices(self) -> int:
        return sum(m.n_devices for m in self.stage_meshes)


@dataclass(frozen=True)
class MethodSpec:
    """One named end-to-end system configuration."""

    strategy: str
    schedule: str
    overlap: bool
    delay_bw_weight: bool


METHODS: dict[str, MethodSpec] = {
    "send_recv": MethodSpec("send_recv", "1f1b", overlap=False, delay_bw_weight=False),
    "alpa": MethodSpec("allgather", "1f1b", overlap=False, delay_bw_weight=False),
    "broadcast": MethodSpec("broadcast", "1f1b", overlap=False, delay_bw_weight=False),
    "overlap": MethodSpec("broadcast", "1f1b", overlap=True, delay_bw_weight=False),
    "ours": MethodSpec("broadcast", "eager_1f1b", overlap=True, delay_bw_weight=False),
    "ours_delay": MethodSpec(
        "broadcast", "eager_1f1b", overlap=True, delay_bw_weight=True
    ),
    "signal": MethodSpec("signal", "1f1b", overlap=True, delay_bw_weight=False),
}


def _np_dtype(name: str):
    return np.float16 if name == "fp16" else np.float32


def resolve_comm_edges(
    spec: ParallelJobSpec,
    strategy_name: str,
    cache: Any = USE_DEFAULT_CACHE,
) -> list[CommEdge]:
    """Compile each boundary resharding (both directions) and attach it.

    Every micro-batch reshards the same tensor with the same layout, so
    the compiled plan and its simulated duration come from the shared
    plan cache; the :class:`~repro.compiler.EdgeResharding` hung on each
    edge lets the pipeline executor price every message through the same
    cache + ``simulate_plan`` path.  ``cache=None`` compiles every edge
    (and every executor message) uncached — benchmarks use it to prove
    the cache changes compile counts, never results.
    """
    ctx = CompileContext(strategy=make_strategy(strategy_name), cache=cache)
    edges: list[CommEdge] = []
    for b in spec.boundaries:
        src_mesh = spec.stage_meshes[b.src_stage]
        dst_mesh = spec.stage_meshes[b.dst_stage]
        fwd_task = ReshardingTask(
            b.shape, src_mesh, b.src_spec, dst_mesh, b.dst_spec,
            dtype=_np_dtype(b.dtype),
        )
        bwd_task = ReshardingTask(
            b.shape, dst_mesh, b.dst_spec, src_mesh, b.src_spec,
            dtype=_np_dtype(b.dtype),
        )
        resharding = EdgeResharding(fwd_task, bwd_task, ctx)
        edges.append(
            CommEdge(
                src_stage=b.src_stage,
                dst_stage=b.dst_stage,
                fwd_time=resharding.time("fwd"),
                bwd_time=resharding.time("bwd"),
                fwd_bytes=b.nbytes(),
                bwd_bytes=b.nbytes(),
                label=b.label,
                resharding=resharding,
            )
        )
    return edges


@dataclass
class E2EResult:
    """One end-to-end training-iteration measurement."""

    method: str
    iteration_time: float
    throughput_tflops: float
    pipeline: PipelineResult = field(repr=False)
    comm_edges: list[CommEdge] = field(repr=False, default_factory=list)


def run_iteration(
    spec: ParallelJobSpec,
    method: str,
    method_spec: Optional[MethodSpec] = None,
    cache: Any = USE_DEFAULT_CACHE,
) -> E2EResult:
    """Simulate one training iteration of ``spec`` under a named method."""
    ms = method_spec if method_spec is not None else METHODS[method]
    edges = resolve_comm_edges(spec, ms.strategy, cache=cache)
    job = PipelineJob(
        stages=spec.profiles, edges=edges, n_microbatches=spec.n_microbatches
    )
    orders = schedule_job(
        ms.schedule,
        n_stages=len(spec.profiles),
        n_microbatches=spec.n_microbatches,
        delay_bw_weight=ms.delay_bw_weight,
    )
    result = simulate_pipeline(job, orders, overlap=ms.overlap)
    iter_time = result.iteration_time + spec.epilogue_time
    tflops = spec.model_flops_per_iteration / iter_time / spec.n_devices / 1e12
    return E2EResult(
        method=method,
        iteration_time=iter_time,
        throughput_tflops=tflops,
        pipeline=result,
        comm_edges=edges,
    )
