"""Pipelined inference (forward-only) on the same model-parallel jobs.

Cross-mesh resharding matters for model-parallel *inference* as much as
training (the paper's introduction targets both).  This module streams
micro-batches through the forward pass only: each stage executes
``F(0), F(1), ...`` and the boundary reshardings either block the
stages (synchronous runtime) or ride the overlap channels.

Two service metrics come out: steady-state **throughput**
(micro-batches per second once the pipeline is full) and **first-batch
latency** (the time for micro-batch 0 to exit the last stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pipeline.executor import PipelineResult, simulate_pipeline
from ..pipeline.schedules import Task
from ..pipeline.stage import PipelineJob
from .parallel import METHODS, ParallelJobSpec, resolve_comm_edges

__all__ = ["InferenceResult", "forward_only_orders", "run_inference"]


def forward_only_orders(n_stages: int, n_microbatches: int) -> list[list[Task]]:
    """Streaming forward schedule: every stage runs F(0..m-1) in order."""
    return [
        [Task("F", mb) for mb in range(n_microbatches)] for _ in range(n_stages)
    ]


@dataclass
class InferenceResult:
    method: str
    total_time: float
    first_batch_latency: float
    throughput_microbatches_per_s: float
    pipeline: PipelineResult = field(repr=False)


def run_inference(
    spec: ParallelJobSpec,
    method: str = "ours",
    n_microbatches: int | None = None,
) -> InferenceResult:
    """Stream ``n_microbatches`` through the forward pipeline.

    ``method`` selects the communication strategy and overlap mode from
    the same table as training (the schedule component is irrelevant:
    forward-only streaming has a single sensible order).
    """
    ms = METHODS[method]
    m = n_microbatches if n_microbatches is not None else spec.n_microbatches
    edges = resolve_comm_edges(spec, ms.strategy)
    job = PipelineJob(stages=spec.profiles, edges=edges, n_microbatches=m)
    orders = forward_only_orders(len(spec.profiles), m)
    result = simulate_pipeline(job, orders, overlap=ms.overlap)
    last = len(spec.profiles) - 1
    first_exit = min(
        e.end
        for e in result.timeline
        if e.stage == last and e.kind == "F" and e.microbatch == 0
    )
    # include the final boundary transfer if the consumer is off-mesh:
    # here the last stage's output stays put, so first-batch latency is
    # its forward completion time.
    return InferenceResult(
        method=method,
        total_time=result.iteration_time,
        first_batch_latency=first_exit,
        throughput_microbatches_per_s=m / result.iteration_time,
        pipeline=result,
    )
