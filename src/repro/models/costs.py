"""Analytic compute/memory cost models for the end-to-end workloads.

All FLOP formulas are the standard ones used in the Megatron/Alpa
literature; throughput in the paper (Fig. 7) is likewise computed from a
model FLOP count divided by measured iteration time.  Device throughputs
are *effective* (achieved GEMM) rates for a V100, not peaks: tensor-core
fp16 GEMM sustains roughly 40 % of the 125 TFLOPS peak in mixed-precision
transformer training, while fp32 GEMM runs close to its 15.7 TFLOPS peak.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceModel",
    "V100",
    "transformer_layer_flops_fwd",
    "transformer_layer_params",
    "conv2d_flops_fwd",
    "conv2d_params",
    "ring_allreduce_time",
    "BYTES",
]

BYTES = {"fp16": 2, "fp32": 4}


@dataclass(frozen=True)
class DeviceModel:
    """Effective per-device throughput and memory."""

    name: str = "V100-16GB"
    fp16_flops: float = 50e12  # effective tensor-core GEMM rate
    fp32_flops: float = 13e12  # effective fp32 GEMM rate
    memory_bytes: float = 16 * (1 << 30)

    def flops(self, precision: str) -> float:
        if precision == "fp16":
            return self.fp16_flops
        if precision == "fp32":
            return self.fp32_flops
        raise ValueError(f"unknown precision {precision!r}")


V100 = DeviceModel()


def transformer_layer_flops_fwd(batch: int, seq: int, hidden: int) -> float:
    """Forward FLOPs of one transformer layer on ``batch`` sequences.

    ``24 B S H^2`` for the four GEMMs (QKV, proj, 2 MLP) plus
    ``4 B S^2 H`` for attention scores and weighted values.  The
    backward pass costs twice this (dgrad + wgrad).
    """
    return 24.0 * batch * seq * hidden**2 + 4.0 * batch * seq**2 * hidden


def transformer_layer_params(hidden: int) -> float:
    """Parameter count of one transformer layer: ``12 H^2``."""
    return 12.0 * hidden**2


def conv2d_flops_fwd(
    batch: int, c_in: int, c_out: int, hw: int, kernel: int = 3
) -> float:
    """Forward FLOPs of one conv layer over ``hw`` output pixels."""
    return 2.0 * kernel * kernel * c_in * c_out * hw * batch


def conv2d_params(c_in: int, c_out: int, kernel: int = 3) -> float:
    return float(kernel * kernel * c_in * c_out)


def ring_allreduce_time(nbytes: float, n_ranks: int, bandwidth: float) -> float:
    """Bandwidth-optimal ring all-reduce latency: ``2 (n-1)/n * bytes/bw``."""
    if n_ranks <= 1:
        return 0.0
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return 2.0 * (n_ranks - 1) / n_ranks * nbytes / bandwidth
